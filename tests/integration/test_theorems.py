"""Integration tests tying executions to the paper's theorem statements."""

import math
import random

import pytest

from repro.channels import (
    CorrelatedNoiseChannel,
    OneSidedNoiseChannel,
    SuppressionNoiseChannel,
)
from repro.core import run_protocol
from repro.core.formal import NoiseModel
from repro.lowerbound import theory
from repro.lowerbound.zeta import LowerBoundAnalyzer
from repro.simulation import ChunkCommitSimulator, SimulationParameters
from repro.simulation.owners import OwnersProtocol, build_owners_code
from repro.tasks import InputSetTask
from repro.tasks.input_set import input_set_formal_protocol


class TestTheoremD1:
    """Theorem D.1: the finding-owners phase gives all parties identical
    owner tables whose owners really beeped 1, w.h.p."""

    @pytest.mark.parametrize("epsilon", [0.1, 0.2])
    def test_owner_guarantees_statistical(self, epsilon):
        n = 6
        rng = random.Random(123)
        trials = 30
        perfect = 0
        code = build_owners_code(n, rate_constant=16.0)
        for trial in range(trials):
            bits = [
                tuple(rng.getrandbits(1) for _ in range(n))
                for _ in range(n)
            ]
            pi = tuple(max(col) for col in zip(*bits))
            protocol = OwnersProtocol(
                n, pi, NoiseModel.two_sided(epsilon), code=code
            )
            channel = CorrelatedNoiseChannel(epsilon, rng=trial)
            result = run_protocol(protocol, bits, channel)
            reference = result.outputs[0].owners
            consistent = all(
                out.owners == reference for out in result.outputs
            )
            valid = all(
                bits[owner][pos] == 1
                for pos, owner in reference.items()
            )
            covering = set(reference) == {
                m for m in range(n) if pi[m] == 1
            }
            perfect += consistent and valid and covering
        assert perfect / trials >= 0.85

    def test_owner_rounds_are_n_log_n(self):
        """The phase costs (|J| + n)·Θ(log n) rounds — for |J| ≤ n this
        is the paper's O(n log n)."""
        for n in (4, 8, 16):
            pi = (1,) * n
            protocol = OwnersProtocol(
                n, pi, NoiseModel.two_sided(0.1)
            )
            rounds = protocol.length()
            code_len = protocol.code.codeword_length
            assert rounds == 2 * n * code_len
            # Θ(log n) codeword length:
            assert code_len <= 14 * math.log2(n + 2) + 8


class TestTheoremC2C3Contradiction:
    """The engine of Theorem C.1: for T below the crossover, the C.2 cap
    sits below the C.3 floor, so no correct protocol can exist — and the
    exact analyzer confirms both sides on small instances."""

    def test_exact_zeta_below_c2_cap(self):
        for n, repetitions in [(2, 1), (2, 2), (3, 1)]:
            protocol = input_set_formal_protocol(n, repetitions)
            analyzer = LowerBoundAnalyzer(
                protocol, NoiseModel.one_sided(1 / 3)
            )
            cap = theory.c2_zeta_bound(n, protocol.length())
            assert analyzer.max_zeta_in_good() <= cap * (1 + 1e-9)

    def test_contradiction_region_excludes_correct_protocols(self):
        """For large n there is a T range where the cap < floor; inside
        it Theorem C.1 forbids correctness.  Verify the region is
        non-empty and Θ(n log n)-sized."""
        n = 10**6
        crossover = theory.zeta_crossover_rounds(n)
        assert crossover > 0
        below = crossover / 2
        assert theory.c2_zeta_bound(n, below) < theory.c3_zeta_requirement(n)
        above = crossover * 2
        assert theory.c2_zeta_bound(n, above) > theory.c3_zeta_requirement(n)
        # Θ(n log n): crossover / n within constant factors of log_3 n / 4.
        ratio = crossover / (n * math.log(n ** 0.25 / 4, 3))
        assert 0.2 <= ratio <= 0.3  # exactly 1/4 by the formula

    def test_naive_protocol_accuracy_degrades_with_n(self):
        """The 2n-round protocol's exact success probability under
        one-sided 1/3 noise decays with n — the protocol the lower bound
        says cannot be short-simulated."""
        accuracies = []
        for n in (1, 2, 3):
            analyzer = LowerBoundAnalyzer(
                input_set_formal_protocol(n), NoiseModel.one_sided(1 / 3)
            )
            accuracies.append(
                analyzer.correctness_probability(lambda x: frozenset(x))
            )
        assert accuracies[0] > accuracies[1] > accuracies[2]
        # Closed form: all 2n - |L(x)| silent rounds must stay silent.
        assert accuracies[0] == pytest.approx(2 / 3)


class TestTheorem12Shape:
    """Theorem 1.2: the chunk-commit simulator completes with O(log n)
    overhead; its per-round repetition factor carries the log."""

    def test_overhead_composition(self):
        task = InputSetTask(6)
        inputs = task.sample_inputs(random.Random(0))
        params = SimulationParameters()
        simulator = ChunkCommitSimulator(params)
        channel = CorrelatedNoiseChannel(0.1, rng=5)
        result = simulator.simulate(
            task.noiseless_protocol(), inputs, channel
        )
        report = result.metadata["report"]
        assert report.completed
        repetitions = report.extra["repetitions"]
        code_len = report.extra["codeword_length"]
        chunk = report.extra["chunk_length"]
        # Per committed chunk: chunk·reps simulation rounds, at most
        # (chunk + n)·code_len owner rounds, plus the verification vote.
        per_chunk_cap = (
            chunk * repetitions
            + (chunk + task.n_parties) * code_len
            + report.extra["verification_repetitions"]
        )
        assert result.rounds <= report.chunk_attempts * per_chunk_cap

    def test_completion_probability_high(self):
        task = InputSetTask(5)
        simulator = ChunkCommitSimulator()
        completed = 0
        for trial in range(20):
            inputs = task.sample_inputs(random.Random(trial))
            channel = CorrelatedNoiseChannel(0.15, rng=trial + 100)
            result = simulator.simulate(
                task.noiseless_protocol(), inputs, channel
            )
            completed += result.metadata["report"].completed
        assert completed >= 19


class TestReductionTheoremA12:
    """A.1.2: one-sided ε = 1/3 + shared 1/4-down-flip ≡ two-sided 1/4."""

    def test_distribution_match_against_direct_channel(self):
        from repro.channels import SharedFlipReductionChannel

        trials = 8000
        reduction = SharedFlipReductionChannel(rng=1)
        direct = CorrelatedNoiseChannel(0.25, rng=2)
        for pattern in [(0, 0, 0), (1, 0, 0)]:
            reduced_rate = (
                sum(
                    reduction.transmit(pattern).common
                    for _ in range(trials)
                )
                / trials
            )
            direct_rate = (
                sum(direct.transmit(pattern).common for _ in range(trials))
                / trials
            )
            assert reduced_rate == pytest.approx(direct_rate, abs=0.025)
