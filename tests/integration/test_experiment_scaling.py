"""Every experiment runs end-to-end at reduced scale.

The full-scale runs are the benchmark suite; these integration tests keep
the ``scale`` knob honest across all thirteen experiments: tables render,
data serialises, and the *deterministic* checks (exact enumerations, the
structural ones) hold even at tiny trial counts.  Statistical checks may
wobble at low scale, so they are not asserted here — only that the runs
complete and report coherently.
"""

import json

import pytest

from repro.experiments import REGISTRY, run_experiment

# Scales tuned so the whole module stays fast while still exercising the
# real sweep shapes.
SCALES = {
    "E1": 0.4,
    "E2": 0.2,
    "E3": 0.3,
    "E4": 0.2,
    "E5": 0.3,
    "E6": 0.1,
    "E7": 0.25,
    "E8": 0.4,
    "E9": 0.3,
    "E10": 0.3,
    "E11": 0.4,
    "E12": 0.4,
    "E13": 0.35,
}


@pytest.mark.parametrize(
    "experiment_id", sorted(SCALES, key=lambda e: int(e[1:]))
)
def test_experiment_runs_at_reduced_scale(experiment_id):
    result = run_experiment(
        experiment_id, seed=7, scale=SCALES[experiment_id]
    )
    # Structure.
    assert result.experiment_id == experiment_id
    assert result.table.strip()
    assert result.checks, "every experiment must declare shape checks"
    # Data round-trips through JSON (the report artifact contract).
    json.dumps(result.data)
    # The table leads with the experiment id (EXPERIMENTS.md convention).
    assert result.table.lstrip().startswith(experiment_id)


def test_registry_and_scales_in_sync():
    assert set(SCALES) == set(REGISTRY)
