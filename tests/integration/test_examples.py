"""Smoke tests: every example script runs to completion.

The examples are documentation that executes; these tests keep them from
rotting.  Each runs as a subprocess (so ``__main__`` guards and prints are
exercised exactly as a user would see them) with a generous timeout.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.stem for script in EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"


def test_all_examples_discovered():
    """The example suite should keep its seven walkthroughs."""
    names = {script.stem for script in EXAMPLES}
    assert {
        "quickstart",
        "fireflies",
        "sensor_network",
        "overhead_curve",
        "lower_bound_demo",
        "noise_models_tour",
        "multihop_mis",
    } <= names
