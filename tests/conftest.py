"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import random

import pytest


def pytest_collection_modifyitems(config, items):
    """Skip ``slow``-marked tests unless RUN_SLOW=1 is set."""
    if os.environ.get("RUN_SLOW") == "1":
        return
    skip_slow = pytest.mark.skip(
        reason="slow stress test; set RUN_SLOW=1 to run"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)

from repro.channels import (
    CorrelatedNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
    SuppressionNoiseChannel,
)
from repro.tasks import InputSetTask


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for sampling test inputs."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def noiseless_channel() -> NoiselessChannel:
    return NoiselessChannel()


@pytest.fixture
def mild_noise_channel() -> CorrelatedNoiseChannel:
    """Two-sided ε = 0.1, the workhorse noise level of the fast tests."""
    return CorrelatedNoiseChannel(epsilon=0.1, rng=1234)


@pytest.fixture
def one_sided_channel() -> OneSidedNoiseChannel:
    return OneSidedNoiseChannel(epsilon=1.0 / 3.0, rng=1234)


@pytest.fixture
def suppression_channel() -> SuppressionNoiseChannel:
    return SuppressionNoiseChannel(epsilon=0.1, rng=1234)


@pytest.fixture
def small_input_set_task() -> InputSetTask:
    return InputSetTask(n_parties=5)
