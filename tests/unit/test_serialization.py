"""Unit tests for the JSON-serialisable report views."""

import json

from repro.analysis import estimate_success
from repro.channels import NoiselessChannel
from repro.core import run_protocol
from repro.simulation import SimulationReport
from repro.tasks import OrTask


class TestSimulationReportToDict:
    def test_round_trips_through_json(self):
        report = SimulationReport(
            scheme="Test",
            inner_length=10,
            simulated_rounds=40,
            completed=True,
            chunk_attempts=3,
            chunk_commits=2,
            rewinds=1,
            extra={"repetitions": 5},
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["scheme"] == "Test"
        assert payload["overhead"] == 4.0
        assert payload["extra"]["repetitions"] == 5

    def test_zero_length_overhead(self):
        report = SimulationReport(scheme="Test", inner_length=0)
        assert report.to_dict()["overhead"] == 0.0

    def test_extra_is_copied(self):
        extra = {"a": 1}
        report = SimulationReport(
            scheme="Test", inner_length=1, extra=extra
        )
        payload = report.to_dict()
        payload["extra"]["a"] = 2
        assert extra["a"] == 1


class TestSweepPointToDict:
    def test_serialisable(self):
        task = OrTask(2)

        def executor(inputs, trial_seed):
            return run_protocol(
                task.noiseless_protocol(), inputs, NoiselessChannel()
            )

        point = estimate_success(
            task, executor, trials=4, params={"n": 2}
        )
        payload = json.loads(json.dumps(point.to_dict()))
        assert payload["params"] == {"n": 2}
        assert payload["success"] == 1.0
        assert payload["trials"] == 4
        assert payload["success_interval"][0] <= 1.0
