"""Unit tests for the protocol-level A.1.2 reduction (shared randomness)."""

import random

import pytest

from repro.channels import (
    CorrelatedNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
)
from repro.core import run_protocol
from repro.errors import ConfigurationError, ProtocolError
from repro.simulation import OneSidedReductionProtocol
from repro.simulation.repetition_sim import RepetitionWrappedProtocol
from repro.tasks import InputSetTask, ParityTask


class TestConstruction:
    def test_p_down_validated(self):
        inner = ParityTask(2).noiseless_protocol()
        with pytest.raises(ConfigurationError):
            OneSidedReductionProtocol(inner, p_down=1.0)

    def test_length_passthrough(self):
        inner = ParityTask(3).noiseless_protocol()
        assert OneSidedReductionProtocol(inner).length() == 3

    def test_shared_seed_required(self):
        inner = ParityTask(2).noiseless_protocol()
        wrapped = OneSidedReductionProtocol(inner)
        with pytest.raises(ProtocolError):
            wrapped.create_parties([0, 1], shared_seed=None)


class TestSemantics:
    def test_noiseless_with_zero_pdown_is_transparent(self, rng):
        task = ParityTask(4)
        wrapped = OneSidedReductionProtocol(
            task.noiseless_protocol(), p_down=0.0
        )
        inputs = task.sample_inputs(rng)
        result = run_protocol(
            wrapped, inputs, NoiselessChannel(), shared_seed=7
        )
        assert task.is_correct(inputs, result.outputs)

    def test_flips_are_shared(self, rng):
        """All parties apply the identical down-flip pattern, so their
        inner views agree and outputs stay unanimous even when flips
        corrupt the answer."""
        task = InputSetTask(5)
        wrapped = OneSidedReductionProtocol(
            task.noiseless_protocol(), p_down=0.5
        )
        for trial in range(20):
            inputs = task.sample_inputs(rng)
            result = run_protocol(
                wrapped,
                inputs,
                OneSidedNoiseChannel(1 / 3, rng=trial),
                shared_seed=trial,
            )
            assert result.outputs_agree()

    def test_emulated_law_matches_two_sided_quarter(self):
        """Statistical check of A.1.2: the wrapped execution's *inner*
        per-round law over the one-sided 1/3 channel matches the direct
        two-sided 1/4 channel.

        Probe protocol: one party beeps a fixed bit for many rounds; the
        inner output records the received bits.
        """
        from repro.core import FunctionalProtocol

        rounds = 4000

        def make_probe(fixed_bit):
            return FunctionalProtocol(
                n_parties=2,
                length=rounds,
                broadcast=lambda i, x, p: fixed_bit if i == 0 else 0,
                output=lambda i, x, received: sum(received),
            )

        for fixed_bit, expected_ones in ((0, 0.25), (1, 0.75)):
            wrapped = OneSidedReductionProtocol(make_probe(fixed_bit))
            result = run_protocol(
                wrapped,
                [None, None],
                OneSidedNoiseChannel(1 / 3, rng=fixed_bit),
                shared_seed=99,
            )
            rate = result.outputs[0] / rounds
            assert rate == pytest.approx(expected_ones, abs=0.03)

    def test_reduction_restores_simulator_guarantees(self, rng):
        """Compose: repetition-harden InputSet (designed for two-sided
        1/4), wrap with the reduction, run over one-sided 1/3 — success
        should be close to running the same hardened protocol directly
        over two-sided 1/4."""
        task = InputSetTask(4)
        hardened = RepetitionWrappedProtocol(
            task.noiseless_protocol(), repetitions=15
        )
        wrapped = OneSidedReductionProtocol(hardened)
        reduced_wins = 0
        direct_wins = 0
        trials = 20
        for trial in range(trials):
            inputs = task.sample_inputs(rng)
            reduced = run_protocol(
                wrapped,
                inputs,
                OneSidedNoiseChannel(1 / 3, rng=trial),
                shared_seed=trial,
            )
            direct = run_protocol(
                hardened,
                inputs,
                CorrelatedNoiseChannel(0.25, rng=trial),
            )
            reduced_wins += task.is_correct(inputs, reduced.outputs)
            direct_wins += task.is_correct(inputs, direct.outputs)
        assert abs(reduced_wins - direct_wins) <= trials * 0.25
        assert reduced_wins >= trials * 0.6

    def test_deterministic_given_seeds(self, rng):
        task = ParityTask(3)
        wrapped = OneSidedReductionProtocol(task.noiseless_protocol())
        inputs = task.sample_inputs(rng)
        a = run_protocol(
            wrapped,
            inputs,
            OneSidedNoiseChannel(1 / 3, rng=5),
            shared_seed=11,
        )
        b = run_protocol(
            wrapped,
            inputs,
            OneSidedNoiseChannel(1 / 3, rng=5),
            shared_seed=11,
        )
        assert a.outputs == b.outputs
