"""Unit tests for report generation and the new CLI commands."""

import pytest

from repro.analysis import generate_report
from repro.cli import main


class TestGenerateReport:
    def test_restricted_report_structure(self):
        report = generate_report(scale=0.3, only=["E5"])
        assert "# Noisy Beeps — experiment report" in report
        assert "## Summary" in report
        assert "## E5 —" in report
        assert "- [x]" in report  # passing checks rendered

    def test_progress_callback(self):
        seen = []
        generate_report(scale=0.3, only=["E5"], progress=seen.append)
        assert seen == ["E5"]

    def test_ids_sorted_numerically(self):
        report = generate_report(scale=0.3, only=["E12", "E5"])
        assert report.index("## E5 —") < report.index("## E12 —")


class TestCliRunExperiment:
    def test_pass_exit_code(self, capsys):
        code = main(["run-experiment", "E5", "--scale", "0.3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "[PASS]" in out

    def test_unknown_experiment(self, capsys):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["run-experiment", "E99"])


class TestCliReport:
    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--only",
                "E5",
                "--scale",
                "0.3",
                "-o",
                str(target),
            ]
        )
        assert code == 0
        content = target.read_text()
        assert "## E5 —" in content

    def test_report_to_stdout(self, capsys):
        code = main(["report", "--only", "E12", "--scale", "0.4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "## E12 —" in out
