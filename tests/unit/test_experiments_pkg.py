"""Unit tests for the experiments package (registry + result plumbing).

Full experiment runs live in the benchmark suite; these tests cover the
infrastructure plus fast scaled-down runs of the cheapest experiments.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    REGISTRY,
    ExperimentResult,
    get_experiment,
    run_experiment,
)
from repro.experiments.base import Check, validate_scale


class TestRegistry:
    def test_thirteen_experiments(self):
        assert len(REGISTRY) == 13
        assert set(REGISTRY) == {f"E{i}" for i in range(1, 14)}

    def test_every_module_has_contract(self):
        for module in REGISTRY.values():
            assert isinstance(module.ID, str)
            assert isinstance(module.TITLE, str)
            assert callable(module.run)

    def test_lookup_case_insensitive(self):
        assert get_experiment("e1") is REGISTRY["E1"]
        assert get_experiment(" E13 ") is REGISTRY["E13"]

    def test_unknown_id_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("E99")


class TestExperimentResult:
    def test_checks_accumulate(self):
        result = ExperimentResult("E0", "test", "table")
        result.check("a", True)
        result.check("b", False)
        assert not result.all_passed
        assert [check.description for check in result.failures] == ["b"]

    def test_summary_contains_verdicts(self):
        result = ExperimentResult("E0", "test", "THE TABLE")
        result.check("good", True)
        result.check("bad", False)
        summary = result.summary()
        assert "THE TABLE" in summary
        assert "[PASS] good" in summary
        assert "[FAIL] bad" in summary

    def test_raise_on_failure(self):
        result = ExperimentResult("E0", "test", "t")
        result.check("nope", False)
        with pytest.raises(AssertionError, match="nope"):
            result.raise_on_failure()

    def test_raise_on_success_is_silent(self):
        result = ExperimentResult("E0", "test", "t")
        result.check("fine", True)
        result.raise_on_failure()

    def test_check_is_frozen(self):
        check = Check("x", True)
        with pytest.raises(Exception):
            check.passed = False  # type: ignore[misc]

    def test_scale_validation(self):
        with pytest.raises(ConfigurationError):
            validate_scale(0)
        assert validate_scale(2.0) == 2.0


class TestScaledRuns:
    """Scaled-down smoke runs of the cheapest experiments — the tables
    must render and the data must be JSON-serialisable; shape checks may
    legitimately wobble at tiny trial counts for the statistical ones, so
    only the robust experiments assert all_passed here."""

    def test_e5_exact_experiment_passes_at_any_scale(self):
        # E5's exact part is deterministic: checks must always pass.
        result = run_experiment("E5", scale=0.3)
        assert result.all_passed, result.summary()
        json.dumps(result.data)

    def test_e12_adversary_is_deterministic(self):
        result = run_experiment("E12", scale=0.5)
        assert result.all_passed, result.summary()

    def test_e3_small_scale(self):
        result = run_experiment("E3", scale=0.4)
        assert result.table.startswith("E3")
        json.dumps(result.data)

    def test_run_experiment_seed_changes_data(self):
        a = run_experiment("E12", scale=0.4, seed=1)
        b = run_experiment("E12", scale=0.4, seed=1)
        assert a.data == b.data  # reproducible
