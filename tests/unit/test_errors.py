"""Unit tests for the exception hierarchy and failure policies."""

import pytest

from repro import errors
from repro.channels import CorrelatedNoiseChannel
from repro.errors import ConfigurationError, SimulationBudgetExceeded
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    SimulationParameters,
)
from repro.tasks import InputSetTask


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            if name == "ReproError":
                continue
            exception_class = getattr(errors, name)
            assert issubclass(exception_class, errors.ReproError), name

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_desync_is_protocol_error(self):
        assert issubclass(
            errors.ProtocolDesyncError, errors.ProtocolError
        )

    def test_decoding_is_coding_error(self):
        assert issubclass(errors.DecodingError, errors.CodingError)

    def test_budget_exceeded_is_simulation_error(self):
        assert issubclass(
            errors.SimulationBudgetExceeded, errors.SimulationError
        )

    def test_budget_exceeded_carries_progress(self):
        error = SimulationBudgetExceeded("nope", committed_rounds=7)
        assert error.committed_rounds == 7
        assert "nope" in str(error)

    def test_single_except_catches_everything(self):
        for name in errors.__all__:
            exception_class = getattr(errors, name)
            if exception_class is errors.ReproError:
                continue
            try:
                if issubclass(
                    exception_class, errors.SimulationBudgetExceeded
                ):
                    raise exception_class("x", committed_rounds=0)
                raise exception_class("x")
            except errors.ReproError:
                pass


class TestOnIncompletePolicy:
    def _hopeless(self, simulator_cls, **kwargs):
        """A simulator configured to (almost surely) run out of budget."""
        params = SimulationParameters(
            repetitions=1,
            verification_repetitions=1,
            attempt_slack=1.0,
            attempt_extra=0,
        )
        return simulator_cls(params, **kwargs)

    def test_default_pads(self, rng):
        task = InputSetTask(3)
        inputs = task.sample_inputs(rng)
        simulator = self._hopeless(ChunkCommitSimulator)
        result = simulator.simulate(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.45, rng=1),
        )
        assert len(result.outputs) == 3  # padded outputs, no exception

    def test_raise_mode_raises_on_failure(self, rng):
        task = InputSetTask(3)
        inputs = task.sample_inputs(rng)
        simulator = self._hopeless(
            ChunkCommitSimulator, on_incomplete="raise"
        )
        raised = 0
        for trial in range(10):
            try:
                simulator.simulate(
                    task.noiseless_protocol(),
                    inputs,
                    CorrelatedNoiseChannel(0.45, rng=trial),
                )
            except SimulationBudgetExceeded as error:
                raised += 1
                assert 0 <= error.committed_rounds <= 6
        assert raised >= 5

    def test_raise_mode_silent_on_success(self, rng):
        from repro.channels import NoiselessChannel

        task = InputSetTask(3)
        inputs = task.sample_inputs(rng)
        simulator = ChunkCommitSimulator(on_incomplete="raise")
        result = simulator.simulate(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        assert task.is_correct(inputs, result.outputs)

    def test_hierarchical_supports_policy(self, rng):
        task = InputSetTask(3)
        inputs = task.sample_inputs(rng)
        simulator = HierarchicalSimulator(
            SimulationParameters(
                repetitions=1, verification_repetitions=1
            ),
            extra_levels=0,
            on_incomplete="raise",
        )
        raised = 0
        for trial in range(10):
            try:
                simulator.simulate(
                    task.noiseless_protocol(),
                    inputs,
                    CorrelatedNoiseChannel(0.45, rng=trial),
                )
            except SimulationBudgetExceeded:
                raised += 1
        assert raised >= 3

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            ChunkCommitSimulator(on_incomplete="explode")
