"""Unit tests for the Gilbert–Elliott burst-noise channel."""

import pytest

from repro.channels import BurstNoiseChannel
from repro.errors import ConfigurationError
from repro.simulation.base import infer_noise_model


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            BurstNoiseChannel(1.0, 0.5, 0.1, 0.1)
        with pytest.raises(ConfigurationError):
            BurstNoiseChannel(0.0, 1.5, 0.1, 0.1)
        with pytest.raises(ConfigurationError):
            BurstNoiseChannel(0.0, 0.5, 0.0, 0.1)
        with pytest.raises(ConfigurationError):
            BurstNoiseChannel(0.0, 0.5, 0.1, 1.5)

    def test_stationary_quantities(self):
        channel = BurstNoiseChannel(0.0, 0.5, p_enter=0.1, p_exit=0.1)
        assert channel.stationary_bad_probability == pytest.approx(0.5)
        assert channel.stationary_flip_rate == pytest.approx(0.25)

    def test_matched_to_targets_average(self):
        channel = BurstNoiseChannel.matched_to(0.15, burst_length=8, rng=0)
        assert channel.stationary_flip_rate == pytest.approx(0.15)
        assert channel.p_exit == pytest.approx(1 / 8)

    def test_matched_to_validation(self):
        with pytest.raises(ConfigurationError):
            BurstNoiseChannel.matched_to(0.6, burst_length=8)  # > eps_bad
        with pytest.raises(ConfigurationError):
            BurstNoiseChannel.matched_to(0.1, burst_length=0.5)
        with pytest.raises(ConfigurationError):
            BurstNoiseChannel.matched_to(
                0.1, burst_length=8, epsilon_good=0.1
            )


class TestBehaviour:
    def test_empirical_average_matches_stationary(self):
        channel = BurstNoiseChannel.matched_to(0.2, burst_length=10, rng=1)
        rounds = 30_000
        flips = sum(channel.transmit((0, 0)).common for _ in range(rounds))
        assert flips / rounds == pytest.approx(0.2, abs=0.02)

    def test_flips_are_bursty(self):
        """Flips cluster: the number of flip runs is far below what an
        i.i.d. channel at the same average rate would produce."""
        channel = BurstNoiseChannel.matched_to(
            0.2, burst_length=20, epsilon_bad=0.9, rng=2
        )
        rounds = 20_000
        flips = [channel.transmit((0,)).common for _ in range(rounds)]
        runs = sum(
            1
            for i in range(1, rounds)
            if flips[i] == 1 and flips[i - 1] == 0
        )
        total = sum(flips)
        # i.i.d. would give runs ~ total*(1-rate); bursty gives far fewer.
        assert total > 0
        assert runs < 0.5 * total * (1 - 0.2)

    def test_views_correlated(self):
        channel = BurstNoiseChannel(0.1, 0.5, 0.1, 0.1, rng=3)
        for _ in range(200):
            outcome = channel.transmit((1, 0, 0))
            assert len(set(outcome.received)) == 1

    def test_burst_rounds_counter(self):
        channel = BurstNoiseChannel(0.0, 0.5, p_enter=0.5, p_exit=0.1, rng=4)
        for _ in range(500):
            channel.transmit((0,))
        assert channel.burst_rounds > 100

    def test_noise_model_inference_uses_stationary_rate(self):
        channel = BurstNoiseChannel.matched_to(0.15, burst_length=8, rng=5)
        model = infer_noise_model(channel)
        assert model.up == pytest.approx(0.15)
        assert model.down == pytest.approx(0.15)

    def test_reproducible(self):
        a = BurstNoiseChannel.matched_to(0.2, 8, rng=9)
        b = BurstNoiseChannel.matched_to(0.2, 8, rng=9)
        for _ in range(100):
            assert a.transmit((0,)).common == b.transmit((0,)).common
