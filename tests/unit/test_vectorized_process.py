"""The composed ``vectorized-process`` backend: bitwise + downgrade pins.

The backend's contract is the intersection of its two parents': records
bitwise-identical to every other backend for the same ``(seed, index)``
(vectorized parent), and the pool downgrade protocol — workers == 1,
unpicklable work, broken pools — with ``last_fallback_reason`` telling
the truth (process parent).  Stripe boundaries are an implementation
detail: any ``chunk_size`` and any worker count must merge to the same
batch.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.channels import (
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
    SuppressionNoiseChannel,
)
from repro.parallel import (
    ChannelSpec,
    SerialRunner,
    SimulationExecutor,
    SimulatorSpec,
)
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    RepetitionSimulator,
    RewindSimulator,
)
from repro.tasks import ParityTask
from repro.vectorized import VectorizedProcessRunner, VectorizedRunner

CHANNEL_SPECS = {
    "noiseless": ChannelSpec.of(NoiselessChannel, seed_kwarg=None),
    "correlated": ChannelSpec.of(CorrelatedNoiseChannel, 0.15),
    "one-sided": ChannelSpec.of(OneSidedNoiseChannel, 1 / 3),
    "suppression": ChannelSpec.of(SuppressionNoiseChannel, 0.2),
}

SIMULATORS = {
    "repetition": SimulatorSpec.of(RepetitionSimulator),
    "chunk": SimulatorSpec.of(ChunkCommitSimulator),
    "hierarchical": SimulatorSpec.of(HierarchicalSimulator),
    "rewind": SimulatorSpec.of(RewindSimulator),
}

TRIALS = 6


@pytest.fixture(scope="module")
def pools():
    """One reusable pool per worker count — pool startup dominates these
    tests, so every parametrization shares the same two runners."""
    runners = {
        workers: VectorizedProcessRunner(workers=workers)
        for workers in (2, 4)
    }
    yield runners
    for runner in runners.values():
        runner.close()


def _executor(task, channel_name, simulator_name):
    return SimulationExecutor(
        task=task,
        channel=CHANNEL_SPECS[channel_name],
        simulator=SIMULATORS[simulator_name],
    )


def _run(runner, task, executor, seed, trials=TRIALS):
    try:
        return runner.run_trials(task, executor, trials, seed=seed).records
    except Exception as exc:  # noqa: BLE001 - parity is the assertion
        return (type(exc), str(exc))


class TestComposedBackendEquivalence:
    @pytest.mark.parametrize("channel_name", sorted(CHANNEL_SPECS))
    @pytest.mark.parametrize("simulator_name", sorted(SIMULATORS))
    @pytest.mark.parametrize("workers", [2, 4])
    def test_bitwise_vs_serial_and_vectorized(
        self, pools, channel_name, simulator_name, workers
    ):
        task = ParityTask(3)
        executor = _executor(task, channel_name, simulator_name)
        seed = 300 + workers
        serial = _run(SerialRunner(), task, executor, seed)
        vectorized = _run(VectorizedRunner(), task, executor, seed)
        composed_runner = pools[workers]
        composed = _run(composed_runner, task, executor, seed)
        assert composed == serial
        assert composed == vectorized
        if isinstance(serial, tuple):
            return  # identical exception from all three backends
        # The pool itself must not have downgraded; in-worker collapse
        # fallbacks surface the collapse reason (hierarchical raises on
        # non-correlated families before any fallback can happen).
        if (
            composed_runner.last_fallback_reason is not None
        ):
            assert "pool" not in composed_runner.last_fallback_reason
            assert "unpicklable" not in composed_runner.last_fallback_reason

    @pytest.mark.parametrize("chunk_size", [1, 2, 5, TRIALS])
    def test_stripe_size_is_invisible(self, chunk_size):
        """Stripe boundaries cannot change a record: per-trial seeds come
        from the global index."""
        task = ParityTask(3)
        executor = _executor(task, "correlated", "chunk")
        reference = _run(SerialRunner(), task, executor, 71)
        runner = VectorizedProcessRunner(workers=2, chunk_size=chunk_size)
        try:
            assert _run(runner, task, executor, 71) == reference
        finally:
            runner.close()

    def test_default_stripes_are_balanced_and_contiguous(self):
        runner = VectorizedProcessRunner(workers=4)
        try:
            stripes = runner._stripe_indices(10)
            assert [len(stripe) for stripe in stripes] == [3, 3, 3, 1]
            assert sorted(sum(stripes, [])) == list(range(10))
            for stripe in stripes:
                assert stripe == list(range(stripe[0], stripe[-1] + 1))
        finally:
            runner.close()


class TestComposedBackendDowngrades:
    def test_single_worker_runs_in_process(self):
        task = ParityTask(3)
        executor = _executor(task, "correlated", "chunk")
        runner = VectorizedProcessRunner(workers=1)
        try:
            batch = runner.run_trials(task, executor, TRIALS, seed=9)
            assert runner.last_fallback_reason is None
            assert batch.timing["fallback"] == 0.0
            assert batch.timing["parallel"] == 0.0
            assert batch.records == _run(
                SerialRunner(), task, executor, 9
            )
        finally:
            runner.close()

    def test_unpicklable_executor_falls_back_vectorized(self):
        task = ParityTask(3)
        picklable = _executor(task, "correlated", "chunk")

        class Unpicklable(SimulationExecutor):
            def __reduce__(self):
                raise TypeError("deliberately unpicklable")

        executor = Unpicklable(
            task=task,
            channel=picklable.channel,
            simulator=picklable.simulator,
        )
        runner = VectorizedProcessRunner(workers=2)
        try:
            batch = runner.run_trials(task, executor, TRIALS, seed=9)
            assert (
                runner.last_fallback_reason == "unpicklable task/executor"
            )
            assert batch.timing["fallback"] == 1.0
            # The recovery path is still the *vectorized* runner.
            assert batch.records == _run(
                VectorizedRunner(), task, picklable, 9
            )
        finally:
            runner.close()

    def test_uncollapsible_batch_reports_collapse_reason(self, pools):
        """Independent noise cannot collapse: the pool still stripes it
        (scalar loop inside each worker) and the reason surfaces."""
        task = ParityTask(3)
        executor = SimulationExecutor(
            task=task,
            channel=ChannelSpec.of(IndependentNoiseChannel, 0.15),
            simulator=SIMULATORS["repetition"],
        )
        runner = pools[2]
        batch = runner.run_trials(task, executor, TRIALS, seed=13)
        assert runner.last_fallback_reason is not None
        assert "no collapsed replay" in runner.last_fallback_reason
        assert batch.timing["fallback"] == 0.0  # the pool itself ran
        assert batch.records == _run(SerialRunner(), task, executor, 13)

    def test_trace_events_match_serial(self, pools):
        from repro.observe import MetricsCollector, Observer

        task = ParityTask(3)
        executor = _executor(task, "correlated", "chunk")

        def trial_events(runner):
            collector = MetricsCollector()
            with Observer([collector]) as observer:
                runner.run_trials(
                    task, executor, TRIALS, seed=5, observe=observer
                )
            return [
                {
                    key: value
                    for key, value in event.items()
                    if key not in ("ts", "elapsed_s")
                }
                for event in collector.events
                if event["event"] == "trial"
            ]

        assert trial_events(pools[2]) == trial_events(SerialRunner())
