"""Unit tests for the pointer-chasing task (§1.2's nominated instance)."""

import random

import pytest

from repro.channels import (
    CorrelatedNoiseChannel,
    NoiselessChannel,
    SuppressionNoiseChannel,
)
from repro.core import run_protocol
from repro.errors import ConfigurationError, TaskError
from repro.simulation import ChunkCommitSimulator, RewindSimulator
from repro.tasks import PointerChasingTask
from repro.tasks.pointer_chasing import pointer_chasing_noiseless_protocol


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PointerChasingTask(0, 3)
        with pytest.raises(ConfigurationError):
            PointerChasingTask(2, 0)
        with pytest.raises(ConfigurationError):
            pointer_chasing_noiseless_protocol(0, 3)

    def test_protocol_length(self):
        task = PointerChasingTask(depth=5, domain_bits=3)
        assert task.noiseless_length() == 15


class TestReferenceOutput:
    def test_hand_computed_chase(self):
        task = PointerChasingTask(depth=3, domain_bits=2)
        f = (1, 2, 3, 0)  # party 0
        g = (2, 0, 1, 3)  # party 1
        # 0 -f-> 1 -g-> 0 -f-> 1
        assert task.reference_output([f, g]) == 1

    def test_depth_one_is_f_of_zero(self):
        task = PointerChasingTask(depth=1, domain_bits=2)
        assert task.reference_output([(3, 0, 0, 0), (0, 0, 0, 0)]) == 3

    def test_validation(self):
        task = PointerChasingTask(depth=2, domain_bits=2)
        with pytest.raises(TaskError):
            task.reference_output([(0, 0, 0, 0)])
        with pytest.raises(TaskError):
            task.reference_output([(0, 0), (0, 0, 0, 0)])
        with pytest.raises(TaskError):
            task.reference_output([(9, 0, 0, 0), (0, 0, 0, 0)])


class TestProtocol:
    def test_transcript_carries_every_hop(self):
        task = PointerChasingTask(depth=3, domain_bits=2)
        f = (1, 2, 3, 0)
        g = (2, 0, 1, 3)
        result = run_protocol(
            task.noiseless_protocol(), [f, g], NoiselessChannel()
        )
        # Hops: f(0)=1, g(1)=0, f(0)=1 -> bits 01 | 00 | 01.
        assert result.transcript.common_view() == (0, 1, 0, 0, 0, 1)
        assert result.outputs == [1, 1]

    def test_silent_party_during_others_step(self):
        task = PointerChasingTask(depth=2, domain_bits=2)
        result = run_protocol(
            task.noiseless_protocol(),
            [(3, 3, 3, 3), (3, 3, 3, 3)],
            NoiselessChannel(),
        )
        # Step 0 (rounds 0-1) belongs to party 0: party 1 silent.
        assert result.transcript.sent_bits(1)[:2] == (0, 0)
        # Step 1 (rounds 2-3) belongs to party 1: party 0 silent.
        assert result.transcript.sent_bits(0)[2:] == (0, 0)

    def test_correct_on_random_instances(self, rng):
        task = PointerChasingTask(depth=6, domain_bits=3)
        for _ in range(30):
            inputs = task.sample_inputs(rng)
            result = run_protocol(
                task.noiseless_protocol(), inputs, NoiselessChannel()
            )
            assert task.is_correct(inputs, result.outputs)

    def test_noise_derails_the_chase(self, rng):
        """A single corrupted pointer bit sends the rest of the chase
        down a wrong path — the error *propagates*, unlike InputSet's
        independent rounds.  Unprotected success collapses."""
        task = PointerChasingTask(depth=6, domain_bits=3)
        wins = 0
        trials = 30
        for trial in range(trials):
            inputs = task.sample_inputs(rng)
            result = run_protocol(
                task.noiseless_protocol(),
                inputs,
                CorrelatedNoiseChannel(0.15, rng=trial),
            )
            wins += task.is_correct(inputs, result.outputs)
        assert wins <= trials * 0.5

    def test_simulators_restore_the_chase(self, rng):
        task = PointerChasingTask(depth=4, domain_bits=3)
        chunk_wins = 0
        rewind_wins = 0
        for trial in range(10):
            inputs = task.sample_inputs(rng)
            chunk = ChunkCommitSimulator().simulate(
                task.noiseless_protocol(),
                inputs,
                CorrelatedNoiseChannel(0.15, rng=trial),
            )
            rewind = RewindSimulator().simulate(
                task.noiseless_protocol(),
                inputs,
                SuppressionNoiseChannel(0.1, rng=trial),
            )
            chunk_wins += task.is_correct(inputs, chunk.outputs)
            rewind_wins += task.is_correct(inputs, rewind.outputs)
        assert chunk_wins >= 9
        assert rewind_wins >= 9
