"""Unit tests for lifting executable protocols to the formal model."""

import pytest

from repro.core import formalize_protocol, run_protocol
from repro.core.formal import NoiseModel
from repro.channels import NoiselessChannel
from repro.errors import ConfigurationError
from repro.lowerbound.feasible import feasible_set
from repro.lowerbound.zeta import LowerBoundAnalyzer
from repro.tasks import MaxIdTask, ParityTask
from repro.tasks.input_set import (
    input_set_formal_protocol,
    input_set_noiseless_protocol,
)


class TestFormalizeBasics:
    def test_beeps_match_direct_execution(self):
        task = ParityTask(3)
        lifted = formalize_protocol(
            task.noiseless_protocol(), [(0, 1)] * 3
        )
        inputs = [1, 0, 1]
        direct = run_protocol(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        pi = direct.transcript.common_view()
        rows = lifted.beeps(inputs, pi)
        for m, record in enumerate(direct.transcript):
            assert rows[m] == record.sent

    def test_lifted_input_set_matches_native_formal(self):
        """formalize(executable InputSet) agrees with the hand-written
        formal version on beeps and transcript probabilities."""
        n = 2
        lifted = formalize_protocol(
            input_set_noiseless_protocol(n),
            [range(1, 2 * n + 1)] * n,
        )
        native = input_set_formal_protocol(n)
        model = NoiseModel.one_sided(1 / 3)
        for inputs in native.enumerate_inputs():
            for pi, probability in native.enumerate_transcripts(
                inputs, model
            ):
                assert lifted.transcript_probability(
                    inputs, pi, model
                ) == pytest.approx(probability)

    def test_adaptive_protocol_lifts(self):
        """Max-id election is adaptive; the lift must reproduce its
        prefix-dependent beeps."""
        task = MaxIdTask(2, id_bits=2)
        lifted = formalize_protocol(
            task.noiseless_protocol(), [range(4)] * 2
        )
        # ids (2, 1): after hearing 1 in round 0, id 1 is eliminated.
        rows = lifted.beeps([2, 1], (1, 0))
        assert rows[0] == (1, 0)
        assert rows[1] == (0, 0)
        # Against an all-zero prefix, id 1 would still be a candidate.
        rows = lifted.beeps([2, 1], (0, 1))
        assert rows[1] == (0, 1)

    def test_output_replay(self):
        task = ParityTask(2)
        lifted = formalize_protocol(
            task.noiseless_protocol(), [(0, 1)] * 2
        )
        assert lifted.output((1, 1)) == 0
        assert lifted.output((1, 0)) == 1

    def test_explicit_output_wins(self):
        task = ParityTask(2)
        lifted = formalize_protocol(
            task.noiseless_protocol(),
            [(0, 1)] * 2,
            output=lambda pi: "custom",
        )
        assert lifted.output((0, 0)) == "custom"

    def test_validation(self):
        task = ParityTask(2)
        with pytest.raises(ConfigurationError):
            formalize_protocol(task.noiseless_protocol(), [(0, 1)])


class TestLiftedLowerBoundAnalysis:
    def test_feasible_sets_on_lifted_max_id(self):
        """Feasible sets of an adaptive protocol: a received 0 in the
        elimination round rules out every id with a 1 in that bit
        position (among still-candidate ids)."""
        task = MaxIdTask(2, id_bits=2)
        lifted = formalize_protocol(
            task.noiseless_protocol(), [range(4)] * 2
        )
        # pi = (0,): round 0 silent, so nobody's MSB is 1 -> ids {0, 1}.
        assert set(feasible_set(lifted, 0, (0,))) == {0, 1}

    def test_analyzer_runs_on_lifted_protocol(self):
        task = ParityTask(2)
        lifted = formalize_protocol(
            task.noiseless_protocol(), [(0, 1)] * 2
        )
        analyzer = LowerBoundAnalyzer(
            lifted, NoiseModel.one_sided(1 / 3)
        )
        summary = analyzer.summary(reference=lambda x: sum(x) & 1)
        assert abs(summary.total_mass - 1.0) < 1e-9
        assert 0.0 <= summary.correctness_probability <= 1.0
