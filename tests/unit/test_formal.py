"""Unit tests for the formal protocol model (Appendix A.1.1)."""

import math

import pytest

from repro.channels import NoiselessChannel, OneSidedNoiseChannel
from repro.core import run_protocol
from repro.core.formal import FormalProtocol, NoiseModel
from repro.errors import ConfigurationError, ProtocolError
from repro.tasks.input_set import input_set_formal_protocol


def _simple_protocol(n=2, length=2):
    """Party i beeps 1 in round i (round-robin)."""
    return FormalProtocol(
        n_parties=n,
        length=length,
        input_spaces=[(0, 1)] * n,
        broadcast=lambda i, x, prefix: x if len(prefix) == i else 0,
        output=lambda pi: tuple(pi),
    )


class TestNoiseModel:
    def test_one_sided(self):
        model = NoiseModel.one_sided(0.3)
        assert model.up == 0.3
        assert model.down == 0.0

    def test_two_sided(self):
        model = NoiseModel.two_sided(0.2)
        assert model.up == model.down == 0.2

    def test_suppression(self):
        model = NoiseModel.suppression(0.1)
        assert model.up == 0.0
        assert model.down == 0.1

    def test_round_probability_or_one(self):
        model = NoiseModel(up=0.1, down=0.2)
        assert model.round_probability(1, 1) == pytest.approx(0.8)
        assert model.round_probability(1, 0) == pytest.approx(0.2)

    def test_round_probability_or_zero(self):
        model = NoiseModel(up=0.1, down=0.2)
        assert model.round_probability(0, 1) == pytest.approx(0.1)
        assert model.round_probability(0, 0) == pytest.approx(0.9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NoiseModel(up=1.0, down=0.0)
        with pytest.raises(ConfigurationError):
            NoiseModel(up=0.0, down=-0.1)


class TestFormalProtocolConstruction:
    def test_input_space_count_validation(self):
        with pytest.raises(ConfigurationError):
            FormalProtocol(
                2, 1, [(0, 1)], lambda i, x, p: 0, lambda pi: None
            )

    def test_empty_input_space_rejected(self):
        with pytest.raises(ConfigurationError):
            FormalProtocol(
                1, 1, [()], lambda i, x, p: 0, lambda pi: None
            )

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            FormalProtocol(
                1, -1, [(0,)], lambda i, x, p: 0, lambda pi: None
            )

    def test_executable_through_engine(self):
        protocol = _simple_protocol()
        result = run_protocol(protocol, [1, 0], NoiselessChannel())
        assert result.outputs == [(1, 0), (1, 0)]


class TestBeepsAndPartition:
    def test_beep_matrix(self):
        protocol = _simple_protocol()
        rows = protocol.beeps([1, 1], (1, 1))
        assert rows == [(1, 0), (0, 1)]

    def test_beep_set(self):
        protocol = _simple_protocol()
        assert protocol.beep_set([1, 1], (1, 1), 0) == {0}
        assert protocol.beep_set([0, 1], (0, 1), 0) == frozenset()

    def test_transcript_length_validation(self):
        protocol = _simple_protocol()
        with pytest.raises(ProtocolError):
            protocol.beeps([1, 1], (1,))

    def test_partition_zeros(self):
        protocol = _simple_protocol()
        partition = protocol.round_partition([0, 0], (0, 0))
        assert partition.zeros == [0, 1]
        assert partition.phantom_ones == []
        assert partition.lonely == {}

    def test_partition_phantom_ones(self):
        protocol = _simple_protocol()
        partition = protocol.round_partition([0, 0], (1, 0))
        assert partition.phantom_ones == [0]
        assert partition.zeros == [1]

    def test_partition_lonely(self):
        protocol = _simple_protocol()
        partition = protocol.round_partition([1, 1], (1, 1))
        assert partition.lonely == {0: [0], 1: [1]}
        assert partition.lonely_count(0) == 1
        assert partition.lonely_count(5) == 0

    def test_partition_crowded(self):
        protocol = FormalProtocol(
            2,
            1,
            [(0, 1)] * 2,
            lambda i, x, p: x,
            lambda pi: None,
        )
        partition = protocol.round_partition([1, 1], (1,))
        assert partition.crowded == [0]


class TestTranscriptProbability:
    def test_noiseless_forced_transcript(self):
        protocol = _simple_protocol()
        model = NoiseModel(up=0.0, down=0.0)
        assert protocol.transcript_probability([1, 0], (1, 0), model) == 1.0
        assert protocol.transcript_probability([1, 0], (0, 0), model) == 0.0

    def test_one_sided_beeped_round_forced(self):
        protocol = _simple_protocol()
        model = NoiseModel.one_sided(1.0 / 3.0)
        # Round 0: party 0 beeps -> pi_0 must be 1.
        assert protocol.transcript_probability([1, 0], (0, 0), model) == 0.0

    def test_one_sided_silent_round_probability(self):
        protocol = _simple_protocol()
        model = NoiseModel.one_sided(1.0 / 3.0)
        # Input (0,0): both rounds silent.
        probability = protocol.transcript_probability([0, 0], (0, 1), model)
        assert probability == pytest.approx((2.0 / 3.0) * (1.0 / 3.0))

    def test_probabilities_sum_to_one(self):
        protocol = _simple_protocol()
        for model in (
            NoiseModel.one_sided(0.3),
            NoiseModel.two_sided(0.2),
            NoiseModel.suppression(0.4),
        ):
            for inputs in protocol.enumerate_inputs():
                total = sum(
                    probability
                    for _, probability in protocol.enumerate_transcripts(
                        inputs, model
                    )
                )
                assert total == pytest.approx(1.0)

    def test_enumeration_pruning_one_sided(self):
        """With both parties beeping, one-sided noise forces all-ones."""
        protocol = _simple_protocol()
        model = NoiseModel.one_sided(0.5 - 1e-9)
        transcripts = list(protocol.enumerate_transcripts([1, 1], model))
        assert transcripts == [((1, 1), 1.0)]

    def test_enumeration_matches_pointwise(self):
        protocol = _simple_protocol()
        model = NoiseModel.two_sided(0.25)
        for pi, probability in protocol.enumerate_transcripts([1, 0], model):
            assert probability == pytest.approx(
                protocol.transcript_probability([1, 0], pi, model)
            )


class TestInputEnumeration:
    def test_enumerate_inputs_cardinality(self):
        protocol = _simple_protocol()
        assert len(list(protocol.enumerate_inputs())) == 4

    def test_input_probability(self):
        protocol = _simple_protocol()
        assert protocol.input_probability() == pytest.approx(0.25)


class TestInputSetFormalProtocol:
    def test_matches_noiseless_execution(self):
        protocol = input_set_formal_protocol(3)
        result = run_protocol(protocol, [2, 5, 2], NoiselessChannel())
        assert result.outputs[0] == frozenset({2, 5})

    def test_repetition_variant_length(self):
        protocol = input_set_formal_protocol(2, repetitions=3)
        assert protocol.length() == 12

    def test_repetition_majority_output(self):
        protocol = input_set_formal_protocol(2, repetitions=3)
        # Transcript: round 1 votes (1,1,0) -> majority 1; others 0.
        pi = (1, 1, 0) + (0,) * 9
        assert protocol.output(pi) == frozenset({1})

    def test_repetition_validation(self):
        with pytest.raises(ConfigurationError):
            input_set_formal_protocol(2, repetitions=0)

    def test_statistical_agreement_with_noisy_run(self):
        """The formal probability matches a Monte-Carlo frequency."""
        protocol = input_set_formal_protocol(2)
        model = NoiseModel.one_sided(1.0 / 3.0)
        inputs = [1, 1]
        target = (1, 0, 0, 0)
        expected = protocol.transcript_probability(inputs, target, model)
        assert expected == pytest.approx((2 / 3) ** 3)
        trials = 3000
        hits = 0
        for trial in range(trials):
            channel = OneSidedNoiseChannel(1.0 / 3.0, rng=trial)
            result = run_protocol(protocol, inputs, channel)
            if result.transcript.common_view() == target:
                hits += 1
        assert hits / trials == pytest.approx(expected, abs=0.035)
