"""Unit tests for topology generators and the TopologySpec API."""

import json
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.network import TOPOLOGIES, Topology, TopologySpec, parse_topology


class TestTopologyClass:
    def test_from_adjacency_sorts_and_dedupes(self):
        topology = Topology.from_adjacency([(2, 1, 1), (0,), (0,)])
        assert topology.in_neighbors(0) == (1, 2)

    def test_symmetric_flag(self):
        assert Topology.from_adjacency([(1,), (0,)]).symmetric
        assert not Topology.from_adjacency([(1,), ()]).symmetric

    def test_directed_in_out_views(self):
        topology = Topology.from_adjacency([(1,), ()])
        # Node 0 hears node 1; so node 1's beeps go OUT to node 0.
        assert topology.in_neighbors(0) == (1,)
        assert topology.out_neighbors(1) == (0,)
        assert topology.out_neighbors(0) == ()

    def test_bfs_distances_and_unreachable(self):
        topology = Topology.from_adjacency([(1,), (0,), (3,), (2,)])
        distances = topology.bfs_distances(0)
        assert distances[:2] == [0, 1]
        assert distances[2:] == [-1, -1]

    def test_max_in_degree(self):
        star = Topology.from_adjacency([(1, 2, 3), (0,), (0,), (0,)])
        assert star.max_in_degree == 3


class TestGenerators:
    REQUIRED = {
        "geometric": {"radius": 0.35, "seed": 0},
        "scale-free": {"m": 2, "seed": 0},
    }

    @pytest.mark.parametrize("kind", sorted(TOPOLOGIES))
    def test_all_families_build_symmetric_graphs(self, kind):
        spec = TopologySpec.of(kind, **self.REQUIRED.get(kind, {})).with_n(24)
        topology = spec.build()
        assert topology.n == 24
        assert topology.symmetric

    def test_grid_shape_matches_bare_n(self):
        shaped = TopologySpec.of("grid", rows=4, cols=6).build()
        assert shaped.n == 24
        assert shaped.max_in_degree == 4

    def test_grid_partial_last_row(self):
        topology = TopologySpec.of("grid", n=7).build()
        assert topology.n == 7
        assert topology.symmetric

    def test_geometric_radius_controls_degree(self):
        sparse = TopologySpec.of(
            "geometric", n=200, radius=0.05, seed=1
        ).build()
        dense = TopologySpec.of(
            "geometric", n=200, radius=0.4, seed=1
        ).build()
        assert dense.edges > sparse.edges

    def test_geometric_seed_determinism(self):
        a = TopologySpec.of("geometric", n=100, radius=0.2, seed=9)
        b = TopologySpec.of("geometric", n=100, radius=0.2, seed=9)
        c = TopologySpec.of("geometric", n=100, radius=0.2, seed=10)
        assert a.build().adjacency_lists() == b.build().adjacency_lists()
        assert a.build().adjacency_lists() != c.build().adjacency_lists()

    def test_scale_free_connected_and_bounded(self):
        topology = TopologySpec.of("scale-free", n=80, m=2, seed=3).build()
        assert topology.symmetric
        assert all(d >= 0 for d in topology.bfs_distances(0))
        # Preferential attachment adds <= m edges per arriving node.
        assert topology.edges <= 2 * (2 * 80)


class TestTopologySpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologySpec.of("torus", n=9)

    def test_params_canonicalized(self):
        a = TopologySpec.of("geometric", seed=1, radius=0.2, n=10)
        b = TopologySpec.of("geometric", n=10, radius=0.2, seed=1)
        assert a == b and hash(a) == hash(b)

    def test_size_and_with_n(self):
        open_spec = TopologySpec.of("geometric", radius=0.2)
        assert open_spec.size is None
        pinned = open_spec.with_n(50)
        assert pinned.size == 50
        assert pinned.with_n(50) is pinned
        with pytest.raises(ConfigurationError):
            pinned.with_n(51)

    def test_grid_shape_pins_size(self):
        spec = TopologySpec.of("grid", rows=3, cols=5)
        assert spec.size == 15
        with pytest.raises(ConfigurationError):
            spec.with_n(16)

    def test_json_round_trip(self):
        spec = TopologySpec.of("geometric", n=64, radius=0.25, seed=7)
        payload = json.dumps(spec.to_dict(), sort_keys=True)
        revived = TopologySpec.from_dict(json.loads(payload))
        assert revived == spec
        assert revived.build() is spec.build()  # memoized builder

    def test_label_round_trip(self):
        spec = TopologySpec.of("geometric", n=64, radius=0.25, seed=7)
        assert parse_topology(spec.label()) == spec

    def test_pickles(self):
        spec = TopologySpec.of("grid", rows=8, cols=8)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_build_memoized(self):
        spec = TopologySpec.of("grid", rows=6, cols=6)
        assert spec.build() is TopologySpec.of(
            "grid", cols=6, rows=6
        ).build()


class TestParseTopology:
    def test_bare_kind(self):
        assert parse_topology("ring") == TopologySpec.of("ring")

    def test_bare_node_count(self):
        assert parse_topology("complete:64") == TopologySpec.of(
            "complete", n=64
        )

    def test_grid_shape_shorthand(self):
        assert parse_topology("grid:32x32") == TopologySpec.of(
            "grid", rows=32, cols=32
        )

    def test_key_value_params_with_aliases(self):
        spec = parse_topology("geometric:n=10000,r=0.02,seed=7")
        assert spec == TopologySpec.of(
            "geometric", n=10000, radius=0.02, seed=7
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_topology("moebius:8")

    def test_bad_param_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_topology("ring:wat")
        with pytest.raises(ConfigurationError):
            parse_topology("grid:3xpi")
