"""Deterministic fault-injection through the hierarchical simulator.

Scripted noise lets us watch the Appendix-D.2 machinery do exactly what
the paper says: an optimistically appended bad chunk is caught by a later
progress check, the binary search truncates back to the last consistent
prefix, and the freed leaves resimulate.
"""

from repro.channels import ScriptedChannel
from repro.core.formal import NoiseModel
from repro.simulation import HierarchicalSimulator, SimulationParameters
from repro.tasks import InputSetTask


def _simulator(**kwargs):
    params = SimulationParameters(
        repetitions=1, verification_repetitions=1
    )
    return HierarchicalSimulator(
        params,
        noise_model=NoiseModel.two_sided(0.1),
        level_repetition_step=0,
        **kwargs,
    )


class TestDeterministicTruncation:
    def test_clean_run_no_truncation(self):
        task = InputSetTask(4)
        inputs = [1, 3, 5, 7]
        result = _simulator().simulate(
            task.noiseless_protocol(), inputs, ScriptedChannel(pattern=())
        )
        report = result.metadata["report"]
        assert report.rewinds == 0
        assert report.chunk_commits == 2
        assert report.completed
        assert task.is_correct(inputs, result.outputs)

    def test_corrupted_first_chunk_is_truncated_and_redone(self):
        """Suppress the very first simulation round's beep (a 1→0 flip on
        round 0, where input 1 beeps).  The first chunk is appended bad;
        the first progress check must truncate it — and everything above
        it — and the spare leaves must rebuild both chunks correctly."""
        task = InputSetTask(4)
        inputs = [1, 3, 5, 7]
        channel = ScriptedChannel(flip_rounds=[0], one_sided_down=True)
        result = _simulator(extra_levels=2).simulate(
            task.noiseless_protocol(), inputs, channel
        )
        report = result.metadata["report"]
        assert report.rewinds >= 2  # the bad chunk + everything above it
        assert report.completed
        assert task.is_correct(inputs, result.outputs)

    def test_progress_check_count_matches_tree(self):
        """A depth-d recursion runs exactly 2^d - 1 progress checks."""
        task = InputSetTask(4)
        inputs = [2, 4, 6, 8]
        result = _simulator(extra_levels=2).simulate(
            task.noiseless_protocol(), inputs, ScriptedChannel(pattern=())
        )
        report = result.metadata["report"]
        depth = report.extra["depth"]
        assert report.extra["progress_checks"] == (1 << depth) - 1

    def test_late_corruption_only_unwinds_suffix(self):
        """Corrupt a round inside the *second* chunk: the binary search
        should keep chunk 1 (prefix consistent) and truncate only the
        suffix, so the first chunk is never resimulated.

        With repetitions=1, chunk 1 spans simulation rounds 0..3 plus its
        owners phase; rather than computing the exact global index of
        chunk 2's simulation rounds, corrupt a whole window that lies
        beyond chunk 1's phases but within the second leaf.
        """
        task = InputSetTask(4)
        inputs = [1, 3, 5, 7]
        # First, measure chunk 1's footprint on a clean run.
        probe = _simulator().simulate(
            task.noiseless_protocol(),
            inputs,
            ScriptedChannel(pattern=()),
        )
        total_rounds = probe.rounds
        # Chunk 1 leaf = sim (4 rounds) + owners ((|J|+4)*L); |J| = 2
        # (inputs 1, 3 fall in rounds 1..4).  Compute L from the report.
        code_len = probe.metadata["report"].extra["codeword_length"]
        leaf_one_rounds = 4 + (2 + 4) * code_len
        # Corrupt the first simulation round of leaf 2 (1→0 only so the
        # owners codewords of leaf 2 are unaffected when OR = 0).
        channel = ScriptedChannel(
            flip_rounds=[leaf_one_rounds], one_sided_down=True
        )
        result = _simulator(extra_levels=2).simulate(
            task.noiseless_protocol(), inputs, channel
        )
        report = result.metadata["report"]
        assert report.completed
        assert task.is_correct(inputs, result.outputs)
        # Only the suffix was unwound: strictly fewer truncations than a
        # first-chunk corruption would force at the same depth.
        assert 1 <= report.rewinds <= 2
        assert result.rounds >= total_rounds  # resimulation cost is real
