"""Unit tests for the finding-owners phase (Algorithm 1 / Theorem D.1)."""

import random

import pytest

from repro.channels import CorrelatedNoiseChannel, NoiselessChannel
from repro.core import run_protocol
from repro.core.formal import NoiseModel
from repro.errors import ConfigurationError, ProtocolError
from repro.simulation.owners import (
    NEXT,
    SILENCE,
    OwnersProtocol,
    build_owners_code,
    position_symbol,
    symbol_position,
)


def _random_instance(n, rng):
    """Random beep matrix and its OR transcript."""
    bits = [
        tuple(rng.getrandbits(1) for _ in range(n)) for _ in range(n)
    ]
    pi = tuple(max(bits[i][m] for i in range(n)) for m in range(n))
    return bits, pi


class TestSymbolLayout:
    def test_sentinels_distinct(self):
        assert SILENCE != NEXT

    def test_position_round_trip(self):
        for position in range(10):
            assert symbol_position(position_symbol(position)) == position

    def test_sentinels_have_no_position(self):
        assert symbol_position(SILENCE) is None
        assert symbol_position(NEXT) is None


class TestBuildOwnersCode:
    def test_silence_is_all_zero(self):
        code = build_owners_code(8)
        assert code.encode(SILENCE) == (0,) * code.codeword_length

    def test_alphabet_covers_positions(self):
        code = build_owners_code(8)
        assert code.num_symbols == 10  # 8 positions + 2 sentinels

    def test_length_scales_with_rate_constant(self):
        short = build_owners_code(8, rate_constant=8.0)
        long = build_owners_code(8, rate_constant=20.0)
        assert long.codeword_length > short.codeword_length


class TestOwnersNoiseless:
    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_every_one_gets_valid_owner(self, n):
        rng = random.Random(n)
        for trial in range(10):
            bits, pi = _random_instance(n, rng)
            protocol = OwnersProtocol(
                n, pi, NoiseModel(up=0.0, down=0.0)
            )
            result = run_protocol(protocol, bits, NoiselessChannel())
            owners = result.outputs[0].owners
            # Theorem D.1 conclusion, part 2: owners actually beeped 1.
            for position, owner in owners.items():
                assert bits[owner][position] == 1
            # Part 1 + coverage: all parties agree, every 1 covered.
            assert all(out.owners == owners for out in result.outputs)
            assert set(owners) == {
                m for m in range(n) if pi[m] == 1
            }

    def test_all_zero_transcript_needs_no_owners(self):
        n = 3
        bits = [(0, 0, 0)] * 3
        protocol = OwnersProtocol(n, (0, 0, 0), NoiseModel(up=0.0, down=0.0))
        result = run_protocol(protocol, bits, NoiselessChannel())
        assert result.outputs[0].owners == {}

    def test_smallest_claimant_wins_turn_order(self):
        """Turn order starts at party 0; shared 1s go to the earliest
        party holding them."""
        n = 3
        bits = [(1, 1, 0), (1, 0, 1), (0, 0, 1)]
        pi = (1, 1, 1)
        protocol = OwnersProtocol(n, pi, NoiseModel(up=0.0, down=0.0))
        result = run_protocol(protocol, bits, NoiselessChannel())
        owners = result.outputs[0].owners
        assert owners[0] == 0
        assert owners[1] == 0
        assert owners[2] == 1

    def test_claimed_by_me_tracks_own_claims(self):
        n = 2
        bits = [(1, 0), (0, 1)]
        protocol = OwnersProtocol(n, (1, 1), NoiseModel(up=0.0, down=0.0))
        result = run_protocol(protocol, bits, NoiselessChannel())
        assert result.outputs[0].claimed_by_me == {0}
        assert result.outputs[1].claimed_by_me == {1}

    def test_round_count_matches_length_metadata(self):
        n = 4
        rng = random.Random(0)
        bits, pi = _random_instance(n, rng)
        protocol = OwnersProtocol(n, pi, NoiseModel(up=0.0, down=0.0))
        result = run_protocol(protocol, bits, NoiselessChannel())
        assert result.rounds == protocol.length()


class TestOwnersNoisy:
    def test_theorem_d1_statistics(self):
        """Under two-sided noise, owners are consistent/valid/covering in
        the vast majority of runs (Theorem D.1 shape)."""
        n = 5
        rng = random.Random(42)
        bits, pi = _random_instance(n, rng)
        code = build_owners_code(n, rate_constant=16.0)
        protocol = OwnersProtocol(
            n, pi, NoiseModel.two_sided(0.1), code=code
        )
        perfect = 0
        trials = 40
        for trial in range(trials):
            channel = CorrelatedNoiseChannel(0.1, rng=trial)
            result = run_protocol(protocol, bits, channel)
            owners = result.outputs[0].owners
            consistent = all(
                out.owners == owners for out in result.outputs
            )
            valid = all(
                bits[owner][pos] == 1 for pos, owner in owners.items()
            )
            covering = set(owners) == {
                m for m in range(n) if pi[m] == 1
            }
            if consistent and valid and covering:
                perfect += 1
        assert perfect / trials >= 0.9

    def test_longer_code_reduces_errors(self):
        n = 5
        rng = random.Random(7)
        bits, pi = _random_instance(n, rng)

        def error_rate(rate_constant, trials=30):
            code = build_owners_code(n, rate_constant=rate_constant)
            protocol = OwnersProtocol(
                n, pi, NoiseModel.two_sided(1 / 3), code=code
            )
            bad = 0
            for trial in range(trials):
                channel = CorrelatedNoiseChannel(1 / 3, rng=trial)
                result = run_protocol(protocol, bits, channel)
                owners = result.outputs[0].owners
                ok = set(owners) == {
                    m for m in range(n) if pi[m] == 1
                } and all(
                    bits[owner][pos] == 1
                    for pos, owner in owners.items()
                )
                bad += 0 if ok else 1
            return bad / trials

        assert error_rate(40.0) <= error_rate(6.0) + 0.05


class TestOwnersValidation:
    def test_bits_pi_length_mismatch(self):
        protocol = OwnersProtocol(2, (1, 0), NoiseModel(up=0.0, down=0.0))
        with pytest.raises(ProtocolError):
            run_protocol(
                protocol, [(1,), (0, 0)], NoiselessChannel()
            )

    def test_codebook_size_checked(self):
        code = build_owners_code(2)
        with pytest.raises(ConfigurationError):
            OwnersProtocol(
                2, (1, 0, 1, 0), NoiseModel(up=0.0, down=0.0), code=code
            )
