"""Unit tests for Davies' local-broadcast simulation scheme."""

import random

import pytest

from repro.analysis.stats import wilson_interval
from repro.channels import IndependentNoiseChannel
from repro.core import run_protocol
from repro.errors import ConfigurationError
from repro.network import (
    BroadcastTask,
    LocalBroadcastSimulator,
    MISTask,
    NeighborORTask,
    local_broadcast_repetitions,
    parse_topology,
    ring,
)
from repro.simulation.repetition_sim import RepetitionWrappedProtocol
from repro.simulation.params import SimulationParameters, repetitions_for


class TestRepetitionCount:
    def test_noiseless_needs_one_copy(self):
        assert local_broadcast_repetitions(4, 100, 0.0) == 1

    def test_always_odd(self):
        for epsilon in (0.05, 0.1, 0.2, 0.3, 0.45):
            for degree in (1, 4, 16):
                assert (
                    local_broadcast_repetitions(degree, 50, epsilon) % 2 == 1
                )

    def test_monotone_in_degree_length_and_noise(self):
        base = local_broadcast_repetitions(4, 10, 0.1)
        assert local_broadcast_repetitions(64, 10, 0.1) >= base
        assert local_broadcast_repetitions(4, 1000, 0.1) >= base
        assert local_broadcast_repetitions(4, 10, 0.3) >= base

    def test_degree_not_global_size_sets_the_budget(self):
        """Davies' point: on a bounded-degree graph the budget depends on
        Δ and T, never on n — so it undercuts the single-hop Θ(log n)
        count at scale."""
        local = local_broadcast_repetitions(4, 1, 0.1)
        single_hop = repetitions_for(1024, 0.1)
        assert local < single_hop

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            local_broadcast_repetitions(4, 10, 0.5)
        with pytest.raises(ConfigurationError):
            local_broadcast_repetitions(4, 10, -0.1)
        with pytest.raises(ConfigurationError):
            local_broadcast_repetitions(-1, 10, 0.1)
        with pytest.raises(ConfigurationError):
            local_broadcast_repetitions(4, 0, 0.1)


class TestSimulatorContract:
    def test_requires_network_channel(self):
        task = MISTask(ring(4))
        inputs = task.sample_inputs(random.Random(0))
        with pytest.raises(ConfigurationError):
            LocalBroadcastSimulator().simulate(
                task.noiseless_protocol(),
                inputs,
                IndependentNoiseChannel(0.1, rng=0),
            )

    def test_report_carries_calibration(self):
        task = NeighborORTask(parse_topology("grid:4x4").build())
        inputs = task.sample_inputs(random.Random(0))
        result = LocalBroadcastSimulator().simulate(
            task.noiseless_protocol(),
            inputs,
            task.channel(epsilon=0.1, rng=1),
        )
        report = result.metadata["report"]
        assert report.extra["max_degree"] == 4
        assert report.extra["epsilon"] == pytest.approx(0.1)
        assert report.extra["repetitions"] == local_broadcast_repetitions(
            4, 1, 0.1
        )
        assert result.rounds == report.extra["repetitions"]

    def test_explicit_repetitions_override(self):
        task = NeighborORTask(parse_topology("grid:4x4").build())
        inputs = task.sample_inputs(random.Random(0))
        simulator = LocalBroadcastSimulator(
            params=SimulationParameters(repetitions=5)
        )
        result = simulator.simulate(
            task.noiseless_protocol(),
            inputs,
            task.channel(epsilon=0.1, rng=1),
        )
        assert result.metadata["report"].extra["repetitions"] == 5
        assert result.rounds == 5

    def test_edge_erasures_raise_the_budget(self):
        task = NeighborORTask(parse_topology("grid:4x4").build())
        inputs = task.sample_inputs(random.Random(0))
        result = LocalBroadcastSimulator().simulate(
            task.noiseless_protocol(),
            inputs,
            task.channel(epsilon=0.1, rng=1, edge_epsilon=0.1),
        )
        # ε_eff = node ε + edge ε: erasures count against the majority.
        assert result.metadata["report"].extra["epsilon"] == pytest.approx(
            0.2
        )


class TestTokenAwareWrapper:
    def test_burst_tokens_pass_through_scaled(self):
        """An inner Burst(bit, c) crosses the wrapper as one
        Burst(bit, c*k) token: the flooding protocol stays token-sparse
        and the round count is exactly T*k."""
        task = BroadcastTask(parse_topology("grid:4x4").build())
        inputs = task.sample_inputs(random.Random(3))
        k = 3
        wrapped = RepetitionWrappedProtocol(task.noiseless_protocol(), k)
        result = run_protocol(wrapped, inputs, task.channel())
        assert result.rounds == task.noiseless_length() * k
        assert task.is_correct(inputs, result.outputs)


class TestEndToEnd:
    def test_neighbor_or_survives_noise(self):
        task = NeighborORTask(parse_topology("grid:5x5").build())
        simulator = LocalBroadcastSimulator()
        wins = 0
        for trial in range(20):
            inputs = task.sample_inputs(random.Random(trial))
            result = simulator.simulate(
                task.noiseless_protocol(),
                inputs,
                task.channel(epsilon=0.1, rng=trial),
            )
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 18

    def test_unprotected_baseline_fails(self):
        task = NeighborORTask(parse_topology("grid:5x5").build())
        wins = 0
        for trial in range(20):
            inputs = task.sample_inputs(random.Random(trial))
            result = run_protocol(
                task.noiseless_protocol(),
                inputs,
                task.channel(epsilon=0.1, rng=trial),
            )
            wins += task.is_correct(inputs, result.outputs)
        assert wins <= 10  # 25 nodes x 10% flip rate: most trials break

    def test_mis_on_ring_with_noise(self):
        task = MISTask(ring(12))
        simulator = LocalBroadcastSimulator()
        wins = 0
        for trial in range(10):
            inputs = task.sample_inputs(random.Random(trial))
            result = simulator.simulate(
                task.noiseless_protocol(),
                inputs,
                task.channel(epsilon=0.05, rng=trial),
            )
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 9


@pytest.mark.slow
class TestStatisticalValidation:
    """RUN_SLOW=1: Wilson-CI check of the scheme's error guarantee."""

    def test_success_rate_wilson_lower_bound(self):
        task = NeighborORTask(parse_topology("grid:6x6").build())
        simulator = LocalBroadcastSimulator()
        trials = 300
        wins = 0
        for trial in range(trials):
            inputs = task.sample_inputs(random.Random(trial))
            result = simulator.simulate(
                task.noiseless_protocol(),
                inputs,
                task.channel(epsilon=0.15, rng=trial),
            )
            wins += task.is_correct(inputs, result.outputs)
        low, _high = wilson_interval(wins, trials)
        # The Hoeffding budget makes per-trial failure ≪ 1%; the 95%
        # Wilson lower bound on 300 trials must clear 0.95 comfortably.
        assert low >= 0.95, f"{wins}/{trials} (wilson low {low:.3f})"
