"""Old-vs-new engine equivalence.

The columnar fast-path engine (:func:`repro.core.run_protocol`) must be
*bitwise equivalent* to the seed repository's loop, preserved verbatim in
:mod:`repro.core._legacy_engine`: same outputs, same transcript contents,
same beep counts, same channel-stats deltas, for every channel family and
both ``record_sent`` modes.  These tests drive both engines over identical
(protocol, channel, seed) grids and compare everything observable.
"""

import pytest

from repro.channels import (
    BudgetedAdversaryChannel,
    BurstNoiseChannel,
    CorrectingAdversaryChannel,
    CorrelatedNoiseChannel,
    ChannelStats,
    IndependentNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
    ScriptedChannel,
    SharedFlipReductionChannel,
    SuppressionNoiseChannel,
)
from repro.core import (
    Burst,
    FunctionalProtocol,
    Party,
    Protocol,
    Silence,
    run_protocol,
)
from repro.core._legacy_engine import legacy_run_protocol
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    RepetitionSimulator,
    RewindSimulator,
)
from repro.simulation.primitives import batch_tokens
from repro.tasks import ParityTask


def _noise_sensitive_protocol(n, length=40):
    """A protocol whose behaviour depends on every received bit, so any
    divergence between engines compounds instead of washing out."""

    def broadcast(index, bit, prefix):
        return (bit + sum(prefix) + index) % 2

    def output(index, bit, received):
        return (tuple(received), sum(received), bit)

    return FunctionalProtocol(
        n_parties=n, length=length, broadcast=broadcast, output=output
    )


def _assert_equivalent(result_fast, result_legacy):
    assert result_fast.outputs == result_legacy.outputs
    assert result_fast.rounds == result_legacy.rounds
    assert result_fast.beeps_per_party == result_legacy.beeps_per_party
    assert result_fast.channel_stats == result_legacy.channel_stats

    fast_t, legacy_t = result_fast.transcript, result_legacy.transcript
    assert len(fast_t) == len(legacy_t)
    assert list(fast_t) == list(legacy_t)
    assert fast_t.or_values() == legacy_t.or_values()
    assert fast_t.noisy_count == legacy_t.noisy_count
    assert fast_t.noise_positions() == legacy_t.noise_positions()
    for party in range(fast_t.n_parties):
        assert fast_t.view(party) == legacy_t.view(party)


CHANNEL_FACTORIES = {
    "noiseless": lambda seed: NoiselessChannel(),
    "correlated": lambda seed: CorrelatedNoiseChannel(0.15, rng=seed),
    "one-sided": lambda seed: OneSidedNoiseChannel(1 / 3, rng=seed),
    "suppression": lambda seed: SuppressionNoiseChannel(0.2, rng=seed),
    "independent": lambda seed: IndependentNoiseChannel(0.15, rng=seed),
    "burst": lambda seed: BurstNoiseChannel(0.01, 0.5, 0.05, 0.2, rng=seed),
    "reduction": lambda seed: SharedFlipReductionChannel(rng=seed),
    "correcting": lambda seed: CorrectingAdversaryChannel(0.25, rng=seed),
    "budgeted": lambda seed: BudgetedAdversaryChannel(5),
    "scripted": lambda seed: ScriptedChannel([3, 7, 11]),
}


class TestLegacyEquivalence:
    @pytest.mark.parametrize("channel_name", sorted(CHANNEL_FACTORIES))
    @pytest.mark.parametrize("n", [1, 2, 5, 16])
    @pytest.mark.parametrize("record_sent", [True, False])
    def test_engines_bitwise_equal(self, channel_name, n, record_sent):
        make_channel = CHANNEL_FACTORIES[channel_name]
        protocol = _noise_sensitive_protocol(n)
        inputs = [i % 2 for i in range(n)]
        seed = 1000 * n + 7
        fast = run_protocol(
            protocol, inputs, make_channel(seed), record_sent=record_sent
        )
        legacy = legacy_run_protocol(
            protocol, inputs, make_channel(seed), record_sent=record_sent
        )
        _assert_equivalent(fast, legacy)
        if record_sent:
            for party in range(n):
                assert fast.transcript.sent_bits(
                    party
                ) == legacy.transcript.sent_bits(party)

    @pytest.mark.parametrize("epsilon", [0.0, 0.1, 0.4])
    def test_correlated_epsilon_grid(self, epsilon):
        for n in (2, 8):
            protocol = _noise_sensitive_protocol(n, length=60)
            inputs = [1] * n
            fast = run_protocol(
                protocol, inputs, CorrelatedNoiseChannel(epsilon, rng=n)
            )
            legacy = legacy_run_protocol(
                protocol, inputs, CorrelatedNoiseChannel(epsilon, rng=n)
            )
            _assert_equivalent(fast, legacy)

    def test_stats_match_transcript_observation(self):
        """The engine's stats delta agrees with what the transcript's
        columnar mask shows (the noisy_count consumer in stats.py)."""
        n = 6
        protocol = _noise_sensitive_protocol(n, length=80)
        result = run_protocol(
            protocol,
            [i % 2 for i in range(n)],
            CorrelatedNoiseChannel(0.2, rng=42),
        )
        observed = ChannelStats.observed_from_transcript(result.transcript)
        assert observed == result.channel_stats
        assert observed.flips == result.transcript.noisy_count

    def test_zero_round_protocol(self):
        protocol = FunctionalProtocol(
            n_parties=3,
            length=0,
            broadcast=lambda i, x, p: 0,
            output=lambda i, x, r: x,
        )
        fast = run_protocol(protocol, [4, 5, 6], NoiselessChannel())
        legacy = legacy_run_protocol(protocol, [4, 5, 6], NoiselessChannel())
        _assert_equivalent(fast, legacy)
        assert fast.outputs == [4, 5, 6]


class _TokenPatternProtocol(Protocol):
    """Parties replay fixed bit patterns, either as batch tokens (one
    Burst/Silence per constant run) or desugared one bit per round."""

    class _P(Party):
        def __init__(self, pattern, tokens):
            self.pattern = pattern
            self.tokens = tokens

        def run(self):
            heard = []
            pattern = self.pattern
            if self.tokens:
                length = len(pattern)
                start = 0
                while start < length:
                    bit = pattern[start]
                    stop = start + 1
                    while stop < length and pattern[stop] == bit:
                        stop += 1
                    run = stop - start
                    heard.extend(
                        (yield Burst(bit, run) if bit else Silence(run))
                    )
                    start = stop
            else:
                for bit in pattern:
                    heard.append((yield bit))
            return tuple(heard)

    def __init__(self, patterns, tokens):
        super().__init__(len(patterns))
        self.patterns = patterns
        self.tokens = tokens

    def create_parties(self, inputs, shared_seed=None):
        return [self._P(pattern, self.tokens) for pattern in self.patterns]


def _staggered_patterns(n, length=48):
    """Per-party patterns with long constant runs at mutually offset
    boundaries, so awake/asleep mixes, simultaneous wake-ups and all-asleep
    stretches all occur."""
    patterns = []
    for party in range(n):
        run = 2 + (party % 5)
        bits = []
        value = party % 2
        while len(bits) < length:
            bits.extend([value] * run)
            value ^= 1
            run = 2 + ((run + party) % 7)
        patterns.append(tuple(bits[:length]))
    return patterns


class TestTokenLegacyEquivalence:
    """The sparse token engine against the seed repository's loop.

    The token protocol runs on the new engine (the legacy loop predates
    tokens); its desugared twin runs on the legacy loop.  Everything
    observable must be bitwise identical across every channel family.
    """

    @pytest.mark.parametrize("channel_name", sorted(CHANNEL_FACTORIES))
    @pytest.mark.parametrize("n", [1, 2, 5, 16])
    @pytest.mark.parametrize("record_sent", [True, False])
    def test_token_engine_matches_seed_loop(
        self, channel_name, n, record_sent
    ):
        make_channel = CHANNEL_FACTORIES[channel_name]
        patterns = _staggered_patterns(n)
        inputs = [None] * n
        seed = 2000 * n + 13
        tokened = run_protocol(
            _TokenPatternProtocol(patterns, tokens=True),
            inputs,
            make_channel(seed),
            record_sent=record_sent,
        )
        legacy = legacy_run_protocol(
            _TokenPatternProtocol(patterns, tokens=False),
            inputs,
            make_channel(seed),
            record_sent=record_sent,
        )
        _assert_equivalent(tokened, legacy)
        if record_sent:
            for party in range(n):
                assert tokened.transcript.sent_bits(
                    party
                ) == legacy.transcript.sent_bits(party)


SIMULATOR_FACTORIES = {
    "chunked": ChunkCommitSimulator,
    "hierarchical": HierarchicalSimulator,
    "repetition": RepetitionSimulator,
    "rewind": RewindSimulator,
}


class TestSimulatorTokenEquivalence:
    """All four simulation schemes, token mode vs desugared per-round mode.

    The primitives' batch tokens are pure scheduling sugar; with identical
    seeds, a simulation must produce bitwise-identical transcripts,
    outputs, beep counts and channel stats either way.
    """

    @pytest.mark.parametrize("scheme", sorted(SIMULATOR_FACTORIES))
    def test_bitwise_identical_simulation(self, scheme):
        simulator = SIMULATOR_FACTORIES[scheme]()
        task = ParityTask(4)
        inputs = [1, 0, 1, 1]

        def simulate():
            return simulator.simulate(
                task.noiseless_protocol(),
                inputs,
                CorrelatedNoiseChannel(0.05, rng=97),
                shared_seed=123,
            )

        tokened = simulate()
        with batch_tokens(False):
            desugared = simulate()
        _assert_equivalent(tokened, desugared)

    def test_rewind_over_suppression_noise(self):
        # Rewind's sound regime (1→0 noise only).
        task = ParityTask(4)
        inputs = [0, 1, 1, 0]

        def simulate():
            return RewindSimulator().simulate(
                task.noiseless_protocol(),
                inputs,
                SuppressionNoiseChannel(0.1, rng=31),
                shared_seed=7,
            )

        tokened = simulate()
        with batch_tokens(False):
            desugared = simulate()
        _assert_equivalent(tokened, desugared)

    def test_repetition_over_independent_noise(self):
        # The word-path sparse loop end to end.
        task = ParityTask(3)
        inputs = [1, 1, 0]

        def simulate():
            return RepetitionSimulator().simulate(
                task.noiseless_protocol(),
                inputs,
                IndependentNoiseChannel(0.1, rng=59),
                shared_seed=11,
            )

        tokened = simulate()
        with batch_tokens(False):
            desugared = simulate()
        _assert_equivalent(tokened, desugared)
