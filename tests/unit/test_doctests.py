"""Run the doctests embedded in module docstrings."""

import doctest

import pytest

import repro.rng
import repro.util.bits

MODULES = [repro.rng, repro.util.bits]


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
