"""Unit tests for the neighbor machinery (§2.3)."""

import pytest

from repro.errors import ConfigurationError
from repro.lowerbound.neighbors import (
    differing_neighbors,
    neighbor_inputs,
    neighbors_of_player,
    sensitivity_profile,
)

UNIVERSE = range(1, 7)  # [2n] for n = 3


class TestNeighborsOfPlayer:
    def test_count(self):
        neighbors = list(neighbors_of_player((1, 2, 3), 0, UNIVERSE))
        assert len(neighbors) == 5  # |universe| - 1

    def test_only_one_coordinate_changes(self):
        for neighbor in neighbors_of_player((1, 2, 3), 1, UNIVERSE):
            assert neighbor[0] == 1
            assert neighbor[2] == 3
            assert neighbor[1] != 2

    def test_player_range_validated(self):
        with pytest.raises(ConfigurationError):
            list(neighbors_of_player((1, 2), 2, UNIVERSE))


class TestNeighborInputs:
    def test_total_count(self):
        neighbors = list(neighbor_inputs((1, 2, 3), UNIVERSE))
        assert len(neighbors) == 3 * 5

    def test_all_are_distinct_from_origin(self):
        origin = (1, 2, 3)
        for neighbor in neighbor_inputs(origin, UNIVERSE):
            assert neighbor != origin


class TestDifferingNeighbors:
    def test_all_unique_inputs_all_neighbors_differ(self):
        """With all-distinct values, removing any value changes L(x)."""
        neighbors = differing_neighbors((1, 2, 3), UNIVERSE)
        assert len(neighbors) == 15

    def test_shadowed_input_shrinks_neighborhood(self):
        """With x = (1, 1, 3): changing one of the 1s to a fresh value
        does NOT remove 1 from L(x) but adds a value -> still differs;
        changing it to 3 gives {1, 3} = L(x)... compute explicitly."""
        x = (1, 1, 3)
        reference = frozenset(x)
        expected = sum(
            1
            for neighbor in neighbor_inputs(x, UNIVERSE)
            if frozenset(neighbor) != reference
        )
        assert len(differing_neighbors(x, UNIVERSE)) == expected

    def test_quadratic_growth_on_unique_inputs(self):
        """|N(x)| = n(2n - 1) when all inputs are unique and changing any
        one always changes the set — the Θ(n²) of §2.3."""
        for n in (2, 3, 4):
            universe = range(1, 2 * n + 1)
            x = tuple(range(1, n + 1))
            count = len(differing_neighbors(x, universe))
            assert count == n * (2 * n - 1)


class TestSensitivityProfile:
    def test_unique_holder_fully_sensitive(self):
        profile = sensitivity_profile((1, 2, 3), UNIVERSE)
        assert profile == {0: 5, 1: 5, 2: 5}

    def test_duplicated_value_less_sensitive(self):
        profile = sensitivity_profile((1, 1, 3), UNIVERSE)
        # Players 0 and 1 share value 1: moving one of them to y adds y
        # (set changes) unless y is already present: y in {1(skip),3}.
        # Moving to 3 gives {1,3} == L(x)?  L(x) = {1,3}; x' = (3,1,3)
        # -> {1,3}: unchanged!  So 4 changing moves out of 5.
        assert profile[0] == 4
        assert profile[1] == 4
        # Player 2 is unique: removing 3 always changes the set.
        assert profile[2] == 5

    def test_profile_keys_cover_players(self):
        profile = sensitivity_profile((2, 2), range(1, 5))
        assert set(profile) == {0, 1}
