"""Unit tests for :mod:`repro.rng`."""

import random

from repro.rng import derive_seed, ensure_rng, spawn, spawn_many


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "noise") == derive_seed(7, "noise")

    def test_label_sensitivity(self):
        assert derive_seed(7, "noise") != derive_seed(7, "inputs")

    def test_seed_sensitivity(self):
        assert derive_seed(7, "noise") != derive_seed(8, "noise")

    def test_fits_64_bits(self):
        for seed in (0, 1, 2**63):
            assert 0 <= derive_seed(seed, "x") < 2**64


class TestSpawn:
    def test_same_label_same_stream(self):
        a = [spawn(1, "a").random() for _ in range(3)]
        b = [spawn(1, "a").random() for _ in range(3)]
        assert a == b

    def test_different_labels_differ(self):
        assert spawn(1, "a").random() != spawn(1, "b").random()

    def test_spawn_many_streams_are_distinct(self):
        streams = list(spawn_many(5, "workers", 4))
        values = [stream.random() for stream in streams]
        assert len(set(values)) == 4

    def test_spawn_many_count(self):
        assert len(list(spawn_many(0, "x", 7))) == 7


class TestEnsureRng:
    def test_passthrough(self):
        generator = random.Random(3)
        assert ensure_rng(generator) is generator

    def test_int_seed(self):
        assert ensure_rng(3).random() == random.Random(3).random()

    def test_none_gives_generator(self):
        generator = ensure_rng(None)
        assert isinstance(generator, random.Random)
