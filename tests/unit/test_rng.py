"""Unit tests for :mod:`repro.rng`."""

import random

from repro.rng import derive_seed, ensure_rng, spawn, spawn_many


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "noise") == derive_seed(7, "noise")

    def test_label_sensitivity(self):
        assert derive_seed(7, "noise") != derive_seed(7, "inputs")

    def test_seed_sensitivity(self):
        assert derive_seed(7, "noise") != derive_seed(8, "noise")

    def test_fits_64_bits(self):
        for seed in (0, 1, 2**63):
            assert 0 <= derive_seed(seed, "x") < 2**64

    def test_golden_values_frozen(self):
        """Literal pins for the derivation the whole system keys on.

        The sweep-service result cache assumes ``derive_seed`` never
        drifts: cached points are addressed by ``(spec, index)`` and
        reproduced through these exact derived seeds, and the labels
        below are the ones the runner/sweep layers actually use
        (``inputs[i]``, ``trial[i]``, ``point[i]``).  Any change to the
        hash construction must fail here, loudly, instead of silently
        serving stale cache entries for different executions.
        """
        golden = {
            (0, "noise"): 13372303448415800639,
            (0, "inputs[0]"): 8297968521199650882,
            (0, "trial[0]"): 17683414376094704113,
            (0, "point[3]"): 10444812024119736379,
            (1, "noise"): 15202110515657751292,
            (1, "inputs[0]"): 10914214112590811497,
            (1, "trial[0]"): 1022907650363320680,
            (1, "point[3]"): 8820439218761862661,
            (42, "noise"): 14572698093340507731,
            (42, "inputs[0]"): 241437616002038100,
            (42, "trial[0]"): 5210354176182013856,
            (42, "point[3]"): 15868979918948107738,
            (2**63, "noise"): 847412493509434179,
            (2**63, "inputs[0]"): 5040927138168413306,
            (2**63, "trial[0]"): 16640101503701361980,
            (2**63, "point[3]"): 8808946106652404792,
        }
        for (seed, label), expected in golden.items():
            assert derive_seed(seed, label) == expected, (seed, label)


class TestVectorizedStreamGolden:
    """Literal pins for the vectorized backend's batch seed layout.

    The vectorized runner derives trial ``i``'s channel from
    ``derive_seed(seed, f"trial[{i}]")`` — the scalar runner's exact
    label — then transfers the ``random.Random`` Mersenne-Twister state
    into numpy and reads uniforms from there.  These pins freeze both
    steps end to end: the derived seeds, the first transferred doubles
    (bit-exact: ``random_sample`` must reproduce ``Random.random``), and
    a packed flip-matrix prefix.  Any drift in the derivation, the state
    transfer, or the packing breaks replayability of vectorized trials
    on the scalar engine and must fail here, loudly.
    """

    #: (master seed, trial index) -> (derived seed, first 3 doubles).
    GOLDEN_STREAMS = {
        (0, 0): (
            17683414376094704113,
            [0.0910270447743976, 0.7847195218805848, 0.5198144271351869],
        ),
        (0, 1): (
            2219731239930664421,
            [0.6897541618609913, 0.26695807512629, 0.8423625376963151],
        ),
        (0, 2): (
            17782741143816187512,
            [0.784217815024148, 0.1795536959226105, 0.10283954223110958],
        ),
        (42, 0): (
            5210354176182013856,
            [0.48425459076644095, 0.9207897634630897, 0.519683381153444],
        ),
        (42, 1): (
            17179934056207608370,
            [0.36638797411303625, 0.19964314493730828, 0.7102666743018011],
        ),
        (42, 2): (
            26438905068955626,
            [0.8364485846127282, 0.10698145165855688, 0.35686599727594925],
        ),
    }

    #: pack_rows of the first 16 flip indicators (epsilon=0.5) of master
    #: seed 0's first three trials.
    GOLDEN_PACKED = [[148, 188], [87, 117], [99, 99]]

    def test_transferred_streams_frozen(self):
        import pytest

        pytest.importorskip("numpy")
        from repro.vectorized import numpy_stream

        for (master, index), (expected_seed, doubles) in (
            self.GOLDEN_STREAMS.items()
        ):
            trial_seed = derive_seed(master, f"trial[{index}]")
            assert trial_seed == expected_seed, (master, index)
            stream = numpy_stream(random.Random(trial_seed))
            assert list(stream.random_sample(3)) == doubles, (master, index)
            # The transfer is a continuation, not a re-seed: the scalar
            # generator produces the same doubles.
            scalar = random.Random(trial_seed)
            assert [scalar.random() for _ in range(3)] == doubles

    def test_batch_flip_matrix_frozen(self):
        import pytest

        pytest.importorskip("numpy")
        from repro.vectorized import BatchFlips

        rngs = [
            random.Random(derive_seed(0, f"trial[{index}]"))
            for index in range(3)
        ]
        batch = BatchFlips(rngs, 0.5, columns=16)
        assert batch.packed.tolist() == self.GOLDEN_PACKED

    #: Batched *network* noise streams, master seed 0, 3x3 grid graph.
    #: The network route wraps each per-trial channel's ``_rng`` — the
    #: same generator the scalar ``NetworkBeepingChannel`` walks with
    #: ``random() < epsilon`` — in one BatchFlips, so these pins freeze
    #: the per-node flip draws (epsilon=0.25: one indicator per node per
    #: round) and the per-edge erasure draws (edge_epsilon=0.1: one per
    #: delivery) end to end.
    GOLDEN_NETWORK_NODE_PACKED = [[144, 144], [7, 81], [96, 35]]
    GOLDEN_NETWORK_NODE_FLIPS = [
        [1, 0, 0, 1, 0, 0, 0, 0, 1],
        [0, 0, 0, 0, 0, 1, 1, 1, 0],
        [0, 1, 1, 0, 0, 0, 0, 0, 0],
    ]
    GOLDEN_NETWORK_EDGE_PACKED = [[128, 128], [3, 0], [0, 1]]
    GOLDEN_NETWORK_EDGE_FLIPS = [
        [1, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0],
        [0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0],
        [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0],
    ]

    def _network_channels(self, **channel_kwargs):
        from repro.network.channel import NetworkBeepingChannel
        from repro.network.topology import TopologySpec
        from repro.parallel import ChannelSpec

        spec = ChannelSpec.of(
            NetworkBeepingChannel,
            topology=TopologySpec.of("grid", rows=3, cols=3),
            **channel_kwargs,
        )
        return [
            spec.make(derive_seed(0, f"trial[{index}]"))
            for index in range(3)
        ]

    def test_network_node_noise_streams_frozen(self):
        import pytest

        pytest.importorskip("numpy")
        from repro.vectorized import BatchFlips

        channels = self._network_channels(epsilon=0.25)
        # Building a network channel consumes no draws: the batch reads
        # each trial's generator from the exact state the scalar engine
        # would first sample it in.
        batch = BatchFlips(
            [channel._rng for channel in channels], 0.25, columns=16
        )
        assert batch.packed.tolist() == self.GOLDEN_NETWORK_NODE_PACKED
        for row, expected in enumerate(self.GOLDEN_NETWORK_NODE_FLIPS):
            assert batch.stream(row).take(9).tolist() == expected, row
        # The scalar channel's draw discipline — ``random() < epsilon``
        # per node per round — yields the same indicators.
        scalar = self._network_channels(epsilon=0.25)[0]
        assert [
            int(scalar._rng.random() < 0.25) for _ in range(9)
        ] == self.GOLDEN_NETWORK_NODE_FLIPS[0]

    def test_network_edge_noise_streams_frozen(self):
        import pytest

        pytest.importorskip("numpy")
        from repro.vectorized import BatchFlips

        channels = self._network_channels(edge_epsilon=0.1)
        batch = BatchFlips(
            [channel._rng for channel in channels], 0.1, columns=16
        )
        assert batch.packed.tolist() == self.GOLDEN_NETWORK_EDGE_PACKED
        for row, expected in enumerate(self.GOLDEN_NETWORK_EDGE_FLIPS):
            assert batch.stream(row).take(12).tolist() == expected, row


class TestSpawn:
    def test_same_label_same_stream(self):
        a = [spawn(1, "a").random() for _ in range(3)]
        b = [spawn(1, "a").random() for _ in range(3)]
        assert a == b

    def test_different_labels_differ(self):
        assert spawn(1, "a").random() != spawn(1, "b").random()

    def test_spawn_many_streams_are_distinct(self):
        streams = list(spawn_many(5, "workers", 4))
        values = [stream.random() for stream in streams]
        assert len(set(values)) == 4

    def test_spawn_many_count(self):
        assert len(list(spawn_many(0, "x", 7))) == 7


class TestEnsureRng:
    def test_passthrough(self):
        generator = random.Random(3)
        assert ensure_rng(generator) is generator

    def test_int_seed(self):
        assert ensure_rng(3).random() == random.Random(3).random()

    def test_none_gives_generator(self):
        generator = ensure_rng(None)
        assert isinstance(generator, random.Random)
