"""Unit tests for simulation parameters."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.simulation import SimulationParameters, repetitions_for


class TestRepetitionsFor:
    def test_noiseless_needs_one(self):
        assert repetitions_for(16, 0.0) == 1

    def test_always_odd(self):
        for n in (2, 8, 64, 1024):
            for epsilon in (0.05, 0.1, 0.25, 0.4):
                assert repetitions_for(n, epsilon) % 2 == 1

    def test_grows_with_n(self):
        assert repetitions_for(4, 0.1) <= repetitions_for(1024, 0.1)

    def test_grows_with_epsilon(self):
        assert repetitions_for(64, 0.05) < repetitions_for(64, 0.3)

    def test_logarithmic_shape(self):
        """Doubling n adds a constant (the Hoeffding log-n term)."""
        deltas = [
            repetitions_for(2 * n, 0.1) - repetitions_for(n, 0.1)
            for n in (8, 16, 32, 64, 128)
        ]
        assert max(deltas) - min(deltas) <= 2

    def test_hoeffding_guarantee(self):
        """exp(-2 r gap^2) <= n^-exponent at the returned r."""
        for n in (8, 64):
            for epsilon in (0.1, 0.25):
                r = repetitions_for(n, epsilon, error_exponent=3.0)
                gap = 0.5 - epsilon
                assert math.exp(-2 * r * gap * gap) <= n ** -3.0 * 1.001

    def test_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            repetitions_for(8, 0.5)
        with pytest.raises(ConfigurationError):
            repetitions_for(8, -0.1)

    def test_n_validation(self):
        with pytest.raises(ConfigurationError):
            repetitions_for(0, 0.1)


class TestSimulationParameters:
    def test_defaults_resolve(self):
        params = SimulationParameters()
        assert params.resolve_chunk_length(8) == 8
        assert params.resolve_repetitions(8, 0.1) == repetitions_for(8, 0.1)
        assert params.resolve_verification_repetitions(
            8, 0.1
        ) == repetitions_for(8, 0.1)

    def test_explicit_values_win(self):
        params = SimulationParameters(
            repetitions=5, chunk_length=3, verification_repetitions=7
        )
        assert params.resolve_repetitions(100, 0.4) == 5
        assert params.resolve_chunk_length(100) == 3
        assert params.resolve_verification_repetitions(100, 0.4) == 7

    def test_with_overrides(self):
        params = SimulationParameters()
        changed = params.with_overrides(repetitions=9)
        assert changed.repetitions == 9
        assert params.repetitions is None  # original untouched

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters(repetitions=0)
        with pytest.raises(ConfigurationError):
            SimulationParameters(chunk_length=0)
        with pytest.raises(ConfigurationError):
            SimulationParameters(verification_repetitions=-1)
        with pytest.raises(ConfigurationError):
            SimulationParameters(code_rate_constant=0)
        with pytest.raises(ConfigurationError):
            SimulationParameters(attempt_slack=0.5)
        with pytest.raises(ConfigurationError):
            SimulationParameters(attempt_extra=-1)
        with pytest.raises(ConfigurationError):
            SimulationParameters(rewind_budget_factor=0.9)
        with pytest.raises(ConfigurationError):
            SimulationParameters(rewind_budget_extra=-2)

    def test_frozen(self):
        params = SimulationParameters()
        with pytest.raises(Exception):
            params.repetitions = 3  # type: ignore[misc]
