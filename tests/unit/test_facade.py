"""The curated public facade: everything in ``repro.__all__`` resolves.

docs/api.md documents the top-level surface; this suite pins it:

* every exported name is importable directly from ``repro``;
* the lazy exports (experiments, reporting) resolve on first touch but
  are *not* imported by a bare ``import repro`` — the registry pulls in
  all 13 experiment modules, which library users shouldn't pay for.
"""

from __future__ import annotations

import subprocess
import sys

import repro


def test_all_names_resolve():
    missing = [
        name for name in repro.__all__ if getattr(repro, name, None) is None
    ]
    assert not missing, f"repro.__all__ names failed to resolve: {missing}"


def test_all_is_sorted_sections_and_unique():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_documented_api_imports():
    # The names docs/api.md leads with, spelled exactly as documented.
    from repro import (  # noqa: F401
        CorrelatedNoiseChannel,
        ChunkCommitSimulator,
        HierarchicalSimulator,
        InputSetTask,
        JsonlSink,
        MetricsCollector,
        NO_OBSERVER,
        Observer,
        ProcessPoolRunner,
        RewindSimulator,
        SummarySink,
        SweepSpec,
        estimate_success,
        overhead_curve,
        run_protocol,
        run_sweep,
        run_sweep_point,
        success_curve,
    )


def test_lazy_exports_resolve():
    assert callable(repro.run_experiment)
    assert callable(repro.generate_report)
    assert "E1" in repro.REGISTRY
    assert repro.ExperimentResult is not None


def test_dir_includes_lazy_names():
    listing = dir(repro)
    for name in ("run_experiment", "REGISTRY", "generate_report"):
        assert name in listing


def test_import_repro_does_not_load_experiments():
    # Run in a fresh interpreter: this process has already resolved the
    # lazy names above.
    code = (
        "import sys; import repro; "
        "sys.exit(1 if 'repro.experiments' in sys.modules else 0)"
    )
    proc = subprocess.run([sys.executable, "-c", code])
    assert proc.returncode == 0, "import repro eagerly loaded experiments"
