"""Equivalence tests for the pluggable trial runners.

The contract under test: for a fixed master seed, every backend — serial,
process pool with any worker count and any chunk size, and every fallback
path — produces **bitwise identical** ``SweepPoint.to_dict()`` output.
"""

from __future__ import annotations

import pytest

from repro.analysis import estimate_success, success_curve
from repro.channels import CorrelatedNoiseChannel
from repro.errors import ConfigurationError
from repro.parallel import (
    ChannelSpec,
    ProcessPoolRunner,
    ProtocolExecutor,
    SerialRunner,
    SimulationExecutor,
    SimulatorSpec,
    get_default_runner,
    make_runner,
    run_trial,
    use_runner,
)
from repro.simulation import ChunkCommitSimulator
from repro.tasks import InputSetTask, OrTask

GRID = [(3, 0.05), (4, 0.2)]


def _raw_executor(n: int, epsilon: float):
    task = InputSetTask(n)
    return task, ProtocolExecutor(
        task=task,
        channel=ChannelSpec.of(CorrelatedNoiseChannel, epsilon),
    )


def _simulated_executor(n: int, epsilon: float):
    task = InputSetTask(n)
    return task, SimulationExecutor(
        task=task,
        channel=ChannelSpec.of(CorrelatedNoiseChannel, epsilon),
        simulator=SimulatorSpec.of(ChunkCommitSimulator),
    )


def _grid_dicts(runner, build, trials=6, seed=20240801):
    points = []
    for index, (n, epsilon) in enumerate(GRID):
        task, executor = build(n, epsilon)
        points.append(
            estimate_success(
                task,
                executor,
                trials,
                seed=seed + index,
                params={"n": n, "epsilon": epsilon},
                runner=runner,
            ).to_dict()
        )
    return points


class TestBackendEquivalence:
    """Serial vs process pool across worker counts and chunk sizes."""

    @pytest.mark.parametrize("build", [_raw_executor, _simulated_executor])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("chunk_size", [1, 3])
    def test_grid_outputs_identical(self, build, workers, chunk_size):
        reference = _grid_dicts(SerialRunner(), build)
        with ProcessPoolRunner(
            workers=workers, chunk_size=chunk_size
        ) as runner:
            assert _grid_dicts(runner, build) == reference

    def test_success_curve_identical(self):
        def point_builder(n):
            task, executor = _simulated_executor(n, 0.1)
            return task, executor, {"n": n}

        serial = success_curve(
            [3, 4], point_builder, trials=4, seed=5, runner=SerialRunner()
        )
        with ProcessPoolRunner(workers=2, chunk_size=2) as runner:
            pooled = success_curve(
                [3, 4], point_builder, trials=4, seed=5, runner=runner
            )
        assert [p.to_dict() for p in pooled] == [
            p.to_dict() for p in serial
        ]

    def test_unpicklable_executor_falls_back_to_serial(self):
        task, executor = _raw_executor(3, 0.1)
        closure = lambda inputs, trial_seed: executor(inputs, trial_seed)
        reference = estimate_success(
            task, closure, 5, seed=9, runner=SerialRunner()
        )
        with ProcessPoolRunner(workers=2) as runner:
            point = estimate_success(
                task, closure, 5, seed=9, runner=runner
            )
            assert runner.last_fallback_reason == (
                "unpicklable task/executor"
            )
        assert point.to_dict() == reference.to_dict()
        assert point.timing["fallback"] == 1.0
        assert point.timing["parallel"] == 0.0

    def test_single_worker_runs_serially_without_pool(self):
        task, executor = _raw_executor(3, 0.1)
        runner = ProcessPoolRunner(workers=1)
        point = estimate_success(task, executor, 3, seed=2, runner=runner)
        assert runner._pool is None
        assert runner.last_fallback_reason is None
        assert point.timing["parallel"] == 0.0
        assert point.timing["fallback"] == 0.0

    def test_pool_reused_across_batches(self):
        task, executor = _raw_executor(3, 0.1)
        with ProcessPoolRunner(workers=2, chunk_size=2) as runner:
            estimate_success(task, executor, 4, seed=0, runner=runner)
            pool = runner._pool
            assert pool is not None
            estimate_success(task, executor, 4, seed=1, runner=runner)
            assert runner._pool is pool


class TestRunnerBookkeeping:
    def test_records_in_index_order(self):
        task, executor = _raw_executor(3, 0.2)
        with ProcessPoolRunner(workers=2, chunk_size=1) as runner:
            batch = runner.run_trials(task, executor, 7, seed=11)
        assert [record.index for record in batch.records] == list(range(7))
        serial = SerialRunner().run_trials(task, executor, 7, seed=11)
        assert batch.records == serial.records

    def test_aggregate_channel_stats_matches_sum(self):
        task, executor = _raw_executor(4, 0.2)
        batch = SerialRunner().run_trials(task, executor, 5, seed=3)
        total = batch.aggregate_channel_stats()
        assert total.rounds == sum(
            record.channel_rounds for record in batch.records
        )
        assert total.flips == sum(
            record.flips for record in batch.records
        )

    def test_run_trial_depends_only_on_seed_and_index(self):
        task, executor = _raw_executor(3, 0.3)
        first = run_trial(task, executor, seed=77, index=4)
        again = run_trial(task, executor, seed=77, index=4)
        assert first == again
        assert first.index == 4

    def test_timing_keys_present(self):
        task, executor = _raw_executor(3, 0.1)
        point = estimate_success(
            task, executor, 3, seed=0, runner=SerialRunner()
        )
        for key in (
            "elapsed_s",
            "trials_per_s",
            "workers",
            "chunks",
            "busy_s",
            "utilization",
            "parallel",
            "fallback",
        ):
            assert key in point.timing

    def test_to_dict_excludes_timing_by_default(self):
        task, executor = _raw_executor(3, 0.1)
        point = estimate_success(
            task, executor, 2, seed=0, runner=SerialRunner()
        )
        assert "timing" not in point.to_dict()
        assert "timing" in point.to_dict(include_timing=True)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolRunner(workers=0)
        with pytest.raises(ConfigurationError):
            ProcessPoolRunner(workers=2, chunk_size=0)
        task, executor = _raw_executor(3, 0.1)
        with pytest.raises(ConfigurationError):
            SerialRunner().run_trials(task, executor, 0)


class TestDefaultRunnerRegistry:
    def test_default_is_serial(self):
        assert isinstance(get_default_runner(), SerialRunner)

    def test_make_runner_dispatch(self):
        assert isinstance(make_runner(1), SerialRunner)
        assert isinstance(make_runner(None), SerialRunner)
        pooled = make_runner(3, chunk_size=2)
        assert isinstance(pooled, ProcessPoolRunner)
        assert pooled.workers == 3
        assert pooled.chunk_size == 2
        pooled.close()

    def test_use_runner_scopes_and_restores(self):
        previous = get_default_runner()
        marker = SerialRunner()
        with use_runner(marker) as active:
            assert active is marker
            assert get_default_runner() is marker
            task, executor = _raw_executor(3, 0.1)
            # No runner= argument: estimate_success picks up the default.
            point = estimate_success(task, executor, 2, seed=0)
            assert point.success.trials == 2
        assert get_default_runner() is previous

    def test_default_runner_used_by_estimate_success(self):
        task, executor = _raw_executor(3, 0.1)
        reference = estimate_success(
            task, executor, 4, seed=6, runner=SerialRunner()
        )
        with ProcessPoolRunner(workers=2, chunk_size=2) as runner:
            with use_runner(runner):
                pooled = estimate_success(task, executor, 4, seed=6)
        assert pooled.to_dict() == reference.to_dict()
        assert pooled.timing["parallel"] == 1.0


class TestExecutorSpecs:
    def test_channel_spec_builds_seeded_channel(self):
        spec = ChannelSpec.of(CorrelatedNoiseChannel, 0.25)
        channel = spec.make(123)
        assert channel.epsilon == 0.25

    def test_channel_spec_seedless(self):
        from repro.channels import NoiselessChannel

        spec = ChannelSpec.of(NoiselessChannel, seed_kwarg=None)
        assert isinstance(spec.make(5), NoiselessChannel)

    def test_simulation_executor_matches_closure(self):
        task = OrTask(3)
        spec_executor = SimulationExecutor(
            task=task,
            channel=ChannelSpec.of(CorrelatedNoiseChannel, 0.1),
            simulator=SimulatorSpec.of(ChunkCommitSimulator),
        )

        def closure(inputs, trial_seed):
            return ChunkCommitSimulator().simulate(
                task.noiseless_protocol(),
                inputs,
                CorrelatedNoiseChannel(0.1, rng=trial_seed),
            )

        from_spec = estimate_success(
            task, spec_executor, 4, seed=1, runner=SerialRunner()
        )
        from_closure = estimate_success(
            task, closure, 4, seed=1, runner=SerialRunner()
        )
        assert from_spec.to_dict() == from_closure.to_dict()

    def test_specs_are_picklable(self):
        import pickle

        task, executor = _simulated_executor(4, 0.1)
        clone_task, clone = pickle.loads(pickle.dumps((task, executor)))
        # Tasks have no __eq__; equivalence means identical trial records.
        assert run_trial(clone_task, clone, seed=8, index=0) == run_trial(
            task, executor, seed=8, index=0
        )
