"""The calibrated ``auto`` planner: routing, pins, and determinism.

The planner's contract: pick a backend per batch from the *measured*
crossover table, never change a result.  The small-``n`` regression pin
is the load-bearing test here — the rewind collapse loses to the scalar
engine at ``n = 8`` (measured, recorded in the shipped
``crossover.json``), so ``backend=auto`` must dispatch it scalar even
though a collapsed form exists.
"""

from __future__ import annotations

import json

import pytest

from repro.channels import (
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    SuppressionNoiseChannel,
)
from repro.parallel import (
    ChannelSpec,
    ProcessPoolRunner,
    RUNNER_BACKENDS,
    SerialRunner,
    SimulationExecutor,
    SimulatorSpec,
    make_runner,
)
from repro.parallel.planner import (
    AutoRunner,
    DEFAULT_CROSSOVER_PATH,
    load_crossover,
    _reset_crossover_cache,
)
from repro.simulation import (
    ChunkCommitSimulator,
    RepetitionSimulator,
    RewindSimulator,
)
from repro.tasks import ParityTask

np = pytest.importorskip("numpy")

from repro.vectorized import VectorizedProcessRunner, VectorizedRunner


def _executor(task, channel_spec, simulator):
    return SimulationExecutor(
        task=task,
        channel=channel_spec,
        simulator=SimulatorSpec.of(simulator),
    )


def _rewind_executor(n):
    return ParityTask(n), _executor(
        ParityTask(n),
        ChannelSpec.of(SuppressionNoiseChannel, 0.1),
        RewindSimulator,
    )


def _chunk_executor(n):
    task = ParityTask(n)
    return task, _executor(
        task, ChannelSpec.of(CorrelatedNoiseChannel, 0.1), ChunkCommitSimulator
    )


class TestMakeRunnerRouting:
    def test_registry_names(self):
        assert "vectorized-process" in RUNNER_BACKENDS
        assert "auto" in RUNNER_BACKENDS

    def test_auto_returns_planner(self):
        runner = make_runner(1, backend="auto")
        assert isinstance(runner, AutoRunner)
        assert runner.workers == 1

    def test_vectorized_process_backend(self):
        runner = make_runner(2, backend="vectorized-process")
        try:
            assert isinstance(runner, VectorizedProcessRunner)
            assert runner.workers == 2
        finally:
            runner.close()

    def test_none_keeps_historical_rule(self):
        # Pinned behavior: backend=None predates the planner and must
        # stay serial-unless-workers, so library callers are unaffected.
        assert isinstance(make_runner(1, backend=None), SerialRunner)
        assert isinstance(make_runner(None, backend=None), SerialRunner)
        pool = make_runner(3, backend=None)
        try:
            assert isinstance(pool, ProcessPoolRunner)
        finally:
            pool.close()


class TestCrossoverTable:
    def test_shipped_table_loads_and_covers_all_schemes(self):
        table = load_crossover(DEFAULT_CROSSOVER_PATH)
        schemes = table["schemes"]
        for scheme in (
            "ChunkCommitSimulator",
            "RewindSimulator",
            "RepetitionSimulator",
            "HierarchicalSimulator",
        ):
            entry = schemes[scheme]
            assert entry["vectorized_min_n"] >= 1
            assert entry["measured"], scheme
        # The regression that motivated the planner: rewind's collapse
        # loses below n=16 on the calibrating machine.
        assert schemes["RewindSimulator"]["vectorized_min_n"] > 8

    def test_env_override(self, tmp_path, monkeypatch):
        override = tmp_path / "crossover.json"
        override.write_text(json.dumps({"default_vectorized_min_n": 999}))
        monkeypatch.setenv("REPRO_CROSSOVER", str(override))
        _reset_crossover_cache()
        try:
            assert load_crossover()["default_vectorized_min_n"] == 999
        finally:
            _reset_crossover_cache()

    def test_unreadable_table_degrades_to_defaults(self, tmp_path):
        _reset_crossover_cache()
        try:
            assert load_crossover(str(tmp_path / "missing.json")) == {}
        finally:
            _reset_crossover_cache()


class TestPlannerDecisions:
    def test_rewind_n8_dispatches_scalar(self):
        """THE small-n pin: collapsed rewind exists but measured slower
        at n=8, so auto must not select it."""
        task, executor = _rewind_executor(8)
        runner = AutoRunner(workers=1)
        try:
            batch = runner.run_trials(task, executor, 4, seed=3)
        finally:
            runner.close()
        decision = runner.last_decision
        assert decision["backend"] == "serial"
        assert "below measured vectorized crossover" in decision["reason"]
        assert decision["scheme"] == "RewindSimulator"
        assert decision["n"] == 8
        assert batch.records == (
            SerialRunner().run_trials(task, executor, 4, seed=3).records
        )

    def test_chunk_large_n_dispatches_vectorized(self):
        task, executor = _chunk_executor(32)
        runner = AutoRunner(workers=1)
        try:
            batch = runner.run_trials(task, executor, 4, seed=3)
            assert runner.last_decision["backend"] == "vectorized"
            assert runner.last_fallback_reason is None
            assert batch.records == (
                SerialRunner().run_trials(task, executor, 4, seed=3).records
            )
        finally:
            runner.close()

    def test_workers_compose_to_vectorized_process(self):
        task, executor = _chunk_executor(32)
        runner = AutoRunner(workers=2)
        try:
            batch = runner.run_trials(task, executor, 8, seed=3)
            assert (
                runner.last_decision["backend"] == "vectorized-process"
            )
            assert batch.records == (
                SerialRunner().run_trials(task, executor, 8, seed=3).records
            )
        finally:
            runner.close()

    def test_uncollapsible_with_workers_goes_process(self):
        task = ParityTask(8)
        executor = _executor(
            task,
            ChannelSpec.of(IndependentNoiseChannel, 0.15),
            RepetitionSimulator,
        )
        runner = AutoRunner(workers=2)
        try:
            runner.run_trials(task, executor, 8, seed=3)
            assert runner.last_decision["backend"] == "process"
            assert "no collapsed replay" in runner.last_decision["reason"]
        finally:
            runner.close()

    def test_tiny_batch_avoids_pool(self):
        task = ParityTask(8)
        executor = _executor(
            task,
            ChannelSpec.of(IndependentNoiseChannel, 0.15),
            RepetitionSimulator,
        )
        runner = AutoRunner(
            workers=4, crossover={"process_min_trials": 100}
        )
        try:
            runner.run_trials(task, executor, 4, seed=3)
            assert runner.last_decision["backend"] == "serial"
            assert "below pool threshold" in runner.last_decision["reason"]
        finally:
            runner.close()

    def test_injected_crossover_overrides(self):
        task, executor = _chunk_executor(32)
        table = {
            "schemes": {"ChunkCommitSimulator": {"vectorized_min_n": 64}}
        }
        runner = AutoRunner(workers=1, crossover=table)
        try:
            runner.run_trials(task, executor, 4, seed=3)
            assert runner.last_decision["backend"] == "serial"
        finally:
            runner.close()

    def test_sub_runners_are_cached(self):
        task, executor = _chunk_executor(32)
        runner = AutoRunner(workers=1)
        try:
            runner.run_trials(task, executor, 2, seed=1)
            first = runner._runners["vectorized"]
            runner.run_trials(task, executor, 2, seed=2)
            assert runner._runners["vectorized"] is first
        finally:
            runner.close()


class TestPlannerObservability:
    def test_backend_selected_event(self):
        from repro.observe import MetricsCollector, Observer

        task, executor = _chunk_executor(32)
        collector = MetricsCollector()
        runner = AutoRunner(workers=1)
        try:
            with Observer([collector]) as observer:
                runner.run_trials(
                    task, executor, 3, seed=7, observe=observer
                )
        finally:
            runner.close()
        events = collector.events_of("backend_selected")
        assert len(events) == 1
        event = events[0]
        assert event["backend"] == "vectorized"
        assert event["scheme"] == "ChunkCommitSimulator"
        assert event["n"] == 32
        assert event["trials"] == 3
        assert event["fallback_reason"] is None
        assert "crossover" in event["reason"]

    def test_summary_sink_breaks_out_backends(self):
        from repro.observe import SummarySink

        sink = SummarySink()
        sink.handle(
            {"event": "backend_selected", "backend": "vectorized"}
        )
        sink.handle(
            {"event": "backend_selected", "backend": "serial"}
        )
        sink.handle(
            {"event": "backend_selected", "backend": "vectorized"}
        )
        rendered = sink.render()
        assert "backend=vectorized" in rendered
        assert "x2" in rendered
        assert "backend=serial" in rendered

    def test_tracing_does_not_perturb(self):
        from repro.observe import MetricsCollector, Observer

        task, executor = _chunk_executor(32)
        plain_runner = AutoRunner(workers=1)
        traced_runner = AutoRunner(workers=1)
        collector = MetricsCollector()
        try:
            plain = plain_runner.run_trials(task, executor, 4, seed=11)
            with Observer([collector]) as observer:
                traced = traced_runner.run_trials(
                    task, executor, 4, seed=11, observe=observer
                )
        finally:
            plain_runner.close()
            traced_runner.close()
        assert plain.records == traced.records


class TestBudgetedTrials:
    def test_trials_for_budget_clamps(self):
        from repro.parallel.calibrate import trials_for_budget

        assert trials_for_budget(0.01, 1.0) == 100
        assert trials_for_budget(10.0, 1.0) == 2  # floor
        assert trials_for_budget(1e-12, 1.0) == 512  # ceiling
        assert trials_for_budget(0.01, 0.0) == 2
        assert (
            trials_for_budget(0.001, 1.0, min_trials=5, max_trials=50)
            == 50
        )
