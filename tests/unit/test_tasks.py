"""Unit tests for the communication tasks."""

import random

import pytest

from repro.channels import NoiselessChannel
from repro.core import run_protocol
from repro.errors import ConfigurationError, TaskError
from repro.tasks import (
    BitExchangeTask,
    InputSetTask,
    MaxIdTask,
    OrTask,
    ParityTask,
)


class TestInputSetTask:
    def test_universe(self):
        task = InputSetTask(4)
        assert list(task.universe) == list(range(1, 9))

    def test_sampling_in_range(self, rng):
        task = InputSetTask(6)
        for _ in range(50):
            inputs = task.sample_inputs(rng)
            assert len(inputs) == 6
            assert all(1 <= x <= 12 for x in inputs)

    def test_reference_output(self):
        task = InputSetTask(3)
        assert task.reference_output([1, 5, 1]) == frozenset({1, 5})

    def test_input_validation(self):
        task = InputSetTask(3)
        with pytest.raises(TaskError):
            task.reference_output([1, 2])
        with pytest.raises(TaskError):
            task.reference_output([0, 2, 3])
        with pytest.raises(TaskError):
            task.reference_output([1, 2, 7])

    def test_noiseless_protocol_solves_task(self, rng):
        task = InputSetTask(5)
        for _ in range(20):
            inputs = task.sample_inputs(rng)
            result = run_protocol(
                task.noiseless_protocol(), inputs, NoiselessChannel()
            )
            assert task.is_correct(inputs, result.outputs)

    def test_noiseless_length_is_2n(self):
        assert InputSetTask(7).noiseless_length() == 14

    def test_transcript_is_membership_indicator(self):
        task = InputSetTask(3)
        inputs = [2, 4, 4]
        result = run_protocol(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        view = result.transcript.common_view()
        assert view == (0, 1, 0, 1, 0, 0)

    def test_unique_holders(self):
        task = InputSetTask(4)
        assert task.unique_holders([1, 2, 2, 5]) == {0, 3}
        assert task.unique_holders([3, 3, 3, 3]) == frozenset()
        assert task.unique_holders([1, 2, 3, 4]) == {0, 1, 2, 3}

    def test_zero_parties_rejected(self):
        with pytest.raises(ConfigurationError):
            InputSetTask(0)


class TestOrTask:
    def test_reference(self):
        task = OrTask(3)
        assert task.reference_output([0, 0, 0]) == 0
        assert task.reference_output([0, 1, 0]) == 1

    def test_single_round_protocol(self, rng):
        task = OrTask(4)
        for _ in range(20):
            inputs = task.sample_inputs(rng)
            result = run_protocol(
                task.noiseless_protocol(), inputs, NoiselessChannel()
            )
            assert result.rounds == 1
            assert task.is_correct(inputs, result.outputs)

    def test_skewed_sampling(self):
        task = OrTask(4, one_probability=0.0)
        assert task.sample_inputs(random.Random(0)) == [0, 0, 0, 0]
        task = OrTask(4, one_probability=1.0)
        assert task.sample_inputs(random.Random(0)) == [1, 1, 1, 1]

    def test_probability_validation(self):
        with pytest.raises(TaskError):
            OrTask(2, one_probability=1.5)


class TestParityTask:
    def test_reference(self):
        task = ParityTask(4)
        assert task.reference_output([1, 1, 0, 0]) == 0
        assert task.reference_output([1, 0, 0, 0]) == 1

    def test_protocol_round_robin(self):
        task = ParityTask(3)
        inputs = [1, 0, 1]
        result = run_protocol(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        assert result.transcript.common_view() == (1, 0, 1)
        assert result.outputs == [0, 0, 0]

    def test_protocol_correct_on_samples(self, rng):
        task = ParityTask(6)
        for _ in range(20):
            inputs = task.sample_inputs(rng)
            result = run_protocol(
                task.noiseless_protocol(), inputs, NoiselessChannel()
            )
            assert task.is_correct(inputs, result.outputs)


class TestBitExchangeTask:
    def test_reference(self):
        task = BitExchangeTask(3)
        inputs = [(1, 0, 1), (0, 0, 1)]
        assert task.reference_output(inputs) == ((1, 0, 1), (0, 0, 1))

    def test_protocol_alternates(self):
        task = BitExchangeTask(2)
        inputs = [(1, 0), (0, 1)]
        result = run_protocol(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        # Rounds: p0 bit0, p1 bit0, p0 bit1, p1 bit1.
        assert result.transcript.common_view() == (1, 0, 0, 1)
        assert task.is_correct(inputs, result.outputs)

    def test_protocol_correct_on_samples(self, rng):
        task = BitExchangeTask(5)
        for _ in range(20):
            inputs = task.sample_inputs(rng)
            result = run_protocol(
                task.noiseless_protocol(), inputs, NoiselessChannel()
            )
            assert task.is_correct(inputs, result.outputs)

    def test_length(self):
        assert BitExchangeTask(4).noiseless_length() == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BitExchangeTask(0)
        with pytest.raises(TaskError):
            BitExchangeTask(2).reference_output([(0, 1)])


class TestMaxIdTask:
    def test_reference(self):
        task = MaxIdTask(3, id_bits=4)
        assert task.reference_output([3, 9, 5]) == 9

    def test_distinctness_required(self):
        task = MaxIdTask(3, id_bits=4)
        with pytest.raises(TaskError):
            task.reference_output([3, 3, 5])

    def test_sampling_distinct(self, rng):
        task = MaxIdTask(6, id_bits=4)
        for _ in range(20):
            inputs = task.sample_inputs(rng)
            assert len(set(inputs)) == 6

    def test_protocol_elects_max(self, rng):
        task = MaxIdTask(5, id_bits=6)
        for _ in range(30):
            inputs = task.sample_inputs(rng)
            result = run_protocol(
                task.noiseless_protocol(), inputs, NoiselessChannel()
            )
            assert result.outputs == [max(inputs)] * 5

    def test_protocol_is_adaptive(self):
        """A party's beep depends on the received prefix: with ids 2 (10)
        and 1 (01), party holding 1 is eliminated after round 0."""
        task = MaxIdTask(2, id_bits=2)
        result = run_protocol(
            task.noiseless_protocol(), [2, 1], NoiselessChannel()
        )
        # Round 0: candidate bits (1, 0) -> hear 1, party with id 1 drops.
        # Round 1: only id 2 beeps its second bit (0).
        assert result.transcript.sent_bits(1) == (0, 0)
        assert result.transcript.common_view() == (1, 0)
        assert result.outputs == [2, 2]

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            MaxIdTask(5, id_bits=2)
        with pytest.raises(ConfigurationError):
            MaxIdTask(2, id_bits=0)


class TestTaskDefaults:
    def test_is_correct_requires_unanimity(self):
        task = OrTask(2)
        assert task.is_correct([1, 0], [1, 1])
        assert not task.is_correct([1, 0], [1, 0])
        assert not task.is_correct([1, 0], [0, 0])
