"""Unit tests for the analysis layer (stats, fitting, sweep, tables)."""

import math

import pytest

from repro.analysis import (
    LogFit,
    ProportionEstimate,
    estimate_success,
    fit_linear,
    fit_log,
    format_table,
    mean,
    overhead_curve,
    sample_std,
    success_curve,
    wilson_interval,
)
from repro.channels import CorrelatedNoiseChannel, NoiselessChannel
from repro.core import run_protocol
from repro.errors import ConfigurationError
from repro.simulation import RepetitionSimulator
from repro.tasks import InputSetTask, OrTask


class TestMeanStd:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ConfigurationError):
            mean([])

    def test_std_known_value(self):
        assert sample_std([2.0, 4.0]) == pytest.approx(math.sqrt(2.0))

    def test_std_single_value_zero(self):
        assert sample_std([5.0]) == 0.0


class TestWilson:
    def test_symmetric_at_half(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert (0.5 - low) == pytest.approx(high - 0.5, abs=1e-9)

    def test_extreme_success_stays_in_unit_interval(self):
        low, high = wilson_interval(100, 100)
        assert high <= 1.0
        assert low > 0.9

    def test_extreme_failure(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0
        assert high < 0.1

    def test_narrower_with_more_trials(self):
        narrow = wilson_interval(500, 1000)
        wide = wilson_interval(5, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(1, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 3)

    def test_proportion_estimate(self):
        estimate = ProportionEstimate(successes=8, trials=10)
        assert estimate.value == 0.8
        low, high = estimate.interval
        assert low < 0.8 < high
        assert "8/10" in str(estimate)

    def test_zero_trials_value(self):
        assert ProportionEstimate(0, 0).value == 0.0


class TestFitting:
    def test_exact_linear_fit(self):
        fit = fit_linear([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.intercept == pytest.approx(1.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_log_fit(self):
        ns = [4, 8, 16, 32]
        ys = [1 + 3 * math.log2(n) for n in ns]
        fit = fit_log(ns, ys)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_constant_data(self):
        fit = fit_linear([1, 2, 3], [5, 5, 5])
        assert fit.slope == pytest.approx(0.0)
        assert fit.r_squared == 1.0

    def test_predict(self):
        fit = LogFit(intercept=1.0, slope=2.0, r_squared=1.0)
        assert fit.predict(3.0) == 7.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_linear([1], [1])
        with pytest.raises(ConfigurationError):
            fit_linear([1, 2], [1])
        with pytest.raises(ConfigurationError):
            fit_log([0, 2], [1, 1])

    def test_noisy_log_data_good_r2(self):
        ns = [4, 8, 16, 32, 64]
        ys = [2 + 1.5 * math.log2(n) + 0.01 * (-1) ** i for i, n in enumerate(ns)]
        fit = fit_log(ns, ys)
        assert fit.r_squared > 0.99
        assert fit.slope == pytest.approx(1.5, abs=0.1)


class TestSweep:
    def _noiseless_executor(self, task):
        def executor(inputs, trial_seed):
            return run_protocol(
                task.noiseless_protocol(), inputs, NoiselessChannel()
            )

        return executor

    def test_noiseless_sweep_is_perfect(self):
        task = OrTask(3)
        point = estimate_success(
            task, self._noiseless_executor(task), trials=20, seed=0
        )
        assert point.success.value == 1.0
        assert point.mean_rounds == 1.0
        assert point.mean_overhead == 1.0

    def test_reproducible(self):
        task = InputSetTask(3)

        def executor(inputs, trial_seed):
            channel = CorrelatedNoiseChannel(0.3, rng=trial_seed)
            return run_protocol(
                task.noiseless_protocol(), inputs, channel
            )

        a = estimate_success(task, executor, trials=30, seed=5)
        b = estimate_success(task, executor, trials=30, seed=5)
        assert a.success.successes == b.success.successes

    def test_simulator_metadata_aggregated(self):
        task = InputSetTask(3)
        simulator = RepetitionSimulator()

        def executor(inputs, trial_seed):
            channel = CorrelatedNoiseChannel(0.1, rng=trial_seed)
            return simulator.simulate(
                task.noiseless_protocol(), inputs, channel
            )

        point = estimate_success(task, executor, trials=5, seed=1)
        assert "completion_rate" in point.extras

    def test_params_recorded(self):
        task = OrTask(2)
        point = estimate_success(
            task,
            self._noiseless_executor(task),
            trials=3,
            params={"n": 2},
        )
        assert point.params == {"n": 2}

    def test_trials_validated(self):
        task = OrTask(2)
        with pytest.raises(ConfigurationError):
            estimate_success(task, self._noiseless_executor(task), trials=0)

    def test_success_curve_and_overhead_curve(self):
        def builder(n):
            task = OrTask(n)

            def executor(inputs, trial_seed):
                return run_protocol(
                    task.noiseless_protocol(), inputs, NoiselessChannel()
                )

            return task, executor, {"n": n}

        points = success_curve([2, 3], builder, trials=5, seed=0)
        assert len(points) == 2
        assert all(point.success.value == 1.0 for point in points)
        pairs = overhead_curve([2, 3], builder, trials=5, seed=0)
        assert pairs == [(2, 1.0), (3, 1.0)]


class TestFormatTable:
    def test_basic_shape(self):
        table = format_table(
            ["n", "overhead"], [[8, 3.25], [16, 4.5]], title="E1"
        )
        lines = table.splitlines()
        assert lines[0] == "E1"
        assert "n" in lines[1] and "overhead" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "3.25" in table and "16" in table

    def test_float_formatting(self):
        table = format_table(["x"], [[0.123456789]])
        assert "0.1235" in table

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table

    def test_row_width_validated(self):
        with pytest.raises(ConfigurationError):
            format_table(["a", "b"], [[1]])

    def test_no_columns_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])
