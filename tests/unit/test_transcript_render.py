"""Unit tests for the transcript ASCII renderer."""

from repro.channels import NoiselessChannel, ScriptedChannel
from repro.core import run_protocol
from repro.tasks import InputSetTask, ParityTask


class TestRender:
    def test_shows_beeps_and_or(self):
        task = ParityTask(3)
        result = run_protocol(
            task.noiseless_protocol(), [1, 0, 1], NoiselessChannel()
        )
        rendered = result.transcript.render()
        lines = rendered.splitlines()
        assert lines[0] == "party 0 |#..|"
        assert lines[1] == "party 1 |...|"
        assert lines[2] == "party 2 |..#|"
        assert "OR      |#.#|" in rendered
        assert "heard   |#.#|" in rendered

    def test_marks_noise(self):
        task = ParityTask(2)
        channel = ScriptedChannel(flip_rounds=[1])
        result = run_protocol(
            task.noiseless_protocol(), [0, 0], channel
        )
        rendered = result.transcript.render()
        noise_line = [
            line for line in rendered.splitlines() if "noise" in line
        ][0]
        assert noise_line == "noise   | !|"

    def test_without_sent_recording_shows_channel_rows_only(self):
        task = ParityTask(2)
        result = run_protocol(
            task.noiseless_protocol(),
            [1, 0],
            NoiselessChannel(),
            record_sent=False,
        )
        rendered = result.transcript.render()
        assert "party" not in rendered
        assert "OR" in rendered

    def test_truncation(self):
        task = InputSetTask(4)  # 8 rounds
        result = run_protocol(
            task.noiseless_protocol(), [1, 2, 3, 4], NoiselessChannel()
        )
        rendered = result.transcript.render(max_rounds=3)
        assert "5 more rounds" in rendered

    def test_empty_transcript(self):
        from repro.core.transcript import Transcript

        rendered = Transcript(2).render()
        assert "OR      ||" in rendered

    def test_docstring_example_is_exact(self):
        """Pin the render format to the example in ``Transcript.render``."""
        from repro.core.transcript import Transcript

        transcript = Transcript(2)
        # Two parties over four rounds; the round-1 beep is flipped away.
        transcript.append_raw([1, 0], 1, 1)
        transcript.append_raw([0, 1], 1, 0)  # noisy: OR=1, heard 0
        transcript.append_raw([0, 0], 0, 0)
        transcript.append_raw([1, 0], 1, 1)
        assert transcript.render() == (
            "party 0 |#..#|\n"
            "party 1 |.#..|\n"
            "OR      |##.#|\n"
            "heard   |#..#|\n"
            "noise   | !  |"
        )
