"""Unit tests for the Appendix-D.2 hierarchical simulator."""

import random

import pytest

from repro.channels import (
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    NoiselessChannel,
)
from repro.errors import ConfigurationError
from repro.simulation import HierarchicalSimulator, SimulationParameters
from repro.tasks import InputSetTask, MaxIdTask, ParityTask


class TestHierarchicalBasics:
    def test_noiseless_perfect_and_no_truncation(self, rng):
        task = InputSetTask(4)
        inputs = task.sample_inputs(rng)
        result = HierarchicalSimulator().simulate(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        report = result.metadata["report"]
        assert task.is_correct(inputs, result.outputs)
        assert report.completed
        assert report.rewinds == 0
        assert report.chunk_commits == 2  # 8 rounds / chunk of 4

    def test_depth_and_leaf_budget(self, rng):
        task = InputSetTask(4)  # 2 chunks -> depth = 1 + extra_levels
        inputs = task.sample_inputs(rng)
        simulator = HierarchicalSimulator(extra_levels=2)
        result = simulator.simulate(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        report = result.metadata["report"]
        assert report.extra["depth"] == 3
        assert report.extra["leaf_budget"] == 8
        # Idle leaves fire after completion: leaf calls == budget.
        assert report.chunk_attempts == 8

    def test_correct_under_noise(self, rng):
        task = InputSetTask(5)
        simulator = HierarchicalSimulator()
        wins = 0
        for trial in range(15):
            inputs = task.sample_inputs(rng)
            channel = CorrelatedNoiseChannel(0.15, rng=trial)
            result = simulator.simulate(
                task.noiseless_protocol(), inputs, channel
            )
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 14

    def test_adaptive_protocol(self, rng):
        task = MaxIdTask(4, id_bits=10)
        simulator = HierarchicalSimulator()
        wins = 0
        for trial in range(10):
            inputs = task.sample_inputs(rng)
            channel = CorrelatedNoiseChannel(0.1, rng=trial)
            result = simulator.simulate(
                task.noiseless_protocol(), inputs, channel
            )
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 9

    def test_single_chunk_protocol(self, rng):
        """num_chunks = 1: depth = extra_levels, still works."""
        task = ParityTask(3)
        inputs = task.sample_inputs(rng)
        result = HierarchicalSimulator().simulate(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        assert task.is_correct(inputs, result.outputs)


class TestTruncationPath:
    def test_bad_chunks_get_truncated(self, rng):
        """With repetitions=1 the simulation phase errs constantly; the
        progress checks must truncate and resimulate, and the final
        output should still often be right thanks to retries."""
        task = InputSetTask(4)
        params = SimulationParameters(repetitions=1)
        simulator = HierarchicalSimulator(params, extra_levels=3)
        truncations = 0
        for trial in range(10):
            inputs = task.sample_inputs(rng)
            channel = CorrelatedNoiseChannel(0.25, rng=trial)
            result = simulator.simulate(
                task.noiseless_protocol(), inputs, channel
            )
            truncations += result.metadata["report"].rewinds
        assert truncations > 0

    def test_budget_exhaustion_is_reported_not_raised(self, rng):
        task = InputSetTask(4)
        params = SimulationParameters(
            repetitions=1, verification_repetitions=3
        )
        simulator = HierarchicalSimulator(params, extra_levels=0)
        channel = CorrelatedNoiseChannel(0.4, rng=0)
        inputs = task.sample_inputs(rng)
        result = simulator.simulate(
            task.noiseless_protocol(), inputs, channel
        )
        report = result.metadata["report"]
        assert report.completed in (True, False)
        assert len(result.outputs) == 4


class TestHierarchicalValidation:
    def test_rejects_independent_noise(self, rng):
        task = InputSetTask(3)
        inputs = task.sample_inputs(rng)
        with pytest.raises(ConfigurationError):
            HierarchicalSimulator().simulate(
                task.noiseless_protocol(),
                inputs,
                IndependentNoiseChannel(0.1, rng=0),
            )

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            HierarchicalSimulator(extra_levels=-1)
        with pytest.raises(ConfigurationError):
            HierarchicalSimulator(level_repetition_step=-1)


class TestAgainstChunkCommit:
    def test_same_answers_on_shared_instances(self, rng):
        """Both Theorem 1.2 implementations should solve the same
        instances (they share all phase-1/2 machinery)."""
        from repro.simulation import ChunkCommitSimulator

        task = InputSetTask(5)
        matches = 0
        for trial in range(10):
            inputs = task.sample_inputs(rng)
            chunked = ChunkCommitSimulator().simulate(
                task.noiseless_protocol(),
                inputs,
                CorrelatedNoiseChannel(0.1, rng=trial),
            )
            hierarchical = HierarchicalSimulator().simulate(
                task.noiseless_protocol(),
                inputs,
                CorrelatedNoiseChannel(0.1, rng=10_000 + trial),
            )
            matches += (
                task.is_correct(inputs, chunked.outputs)
                and task.is_correct(inputs, hierarchical.outputs)
            )
        assert matches >= 9
