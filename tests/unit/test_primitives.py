"""Unit tests for the simulation sub-coroutines."""

from repro.simulation.primitives import (
    repeated_bit,
    silent_rounds,
    transmit_word,
)


def _drive(generator, channel_bits):
    """Run a sub-coroutine feeding it scripted channel bits; return
    (beeped bits, return value)."""
    beeped = []
    try:
        beeped.append(next(generator))
        for bit in channel_bits:
            beeped.append(generator.send(bit))
    except StopIteration as stop:
        return beeped, stop.value
    raise AssertionError("generator did not finish on scripted input")


class TestRepeatedBit:
    def test_beeps_bit_every_round(self):
        beeped, _ = _drive(repeated_bit(1, 3), [1, 1, 1])
        assert beeped == [1, 1, 1]

    def test_majority_decoding(self):
        _, decoded = _drive(repeated_bit(0, 3), [1, 0, 1])
        assert decoded == 1
        _, decoded = _drive(repeated_bit(0, 3), [0, 1, 0])
        assert decoded == 0

    def test_tie_goes_to_zero(self):
        _, decoded = _drive(repeated_bit(0, 4), [1, 1, 0, 0])
        assert decoded == 0

    def test_single_repetition(self):
        beeped, decoded = _drive(repeated_bit(1, 1), [0])
        assert beeped == [1]
        assert decoded == 0


class TestTransmitWord:
    def test_beeps_word_in_order(self):
        beeped, _ = _drive(transmit_word((1, 0, 1)), [1, 0, 1])
        assert beeped == [1, 0, 1]

    def test_returns_received_word(self):
        _, received = _drive(transmit_word((0, 0, 0)), [1, 0, 1])
        assert received == (1, 0, 1)

    def test_empty_word(self):
        generator = transmit_word(())
        try:
            next(generator)
        except StopIteration as stop:
            assert stop.value == ()
        else:
            raise AssertionError("empty word should finish immediately")


class TestSilentRounds:
    def test_beeps_zeros(self):
        beeped, _ = _drive(silent_rounds(3), [0, 1, 0])
        assert beeped == [0, 0, 0]

    def test_returns_heard_bits(self):
        _, heard = _drive(silent_rounds(2), [1, 1])
        assert heard == (1, 1)
