"""Unit tests for the simulation sub-coroutines.

The primitives emit batch tokens by default and desugar to per-round bits
under ``batch_tokens(False)``; both forms are exercised here, plus the
invariant that the two decode identically from the same channel bits.
"""

import pytest

from repro.core.party import Burst, Silence
from repro.simulation.primitives import (
    batch_tokens,
    batch_tokens_enabled,
    repeated_bit,
    silent_rounds,
    transmit_word,
)


def _drive_bits(generator, channel_bits):
    """Run a desugared sub-coroutine feeding it scripted per-round channel
    bits; return (beeped bits, return value)."""
    beeped = []
    try:
        beeped.append(next(generator))
        for bit in channel_bits:
            beeped.append(generator.send(bit))
    except StopIteration as stop:
        return beeped, stop.value
    raise AssertionError("generator did not finish on scripted input")


def _drive_tokens(generator, channel_bits):
    """Run a token-mode sub-coroutine, answering each Burst/Silence token
    with the next ``count`` scripted channel bits as one bytes payload (the
    engine's wake-up convention); return (tokens, return value)."""
    tokens = []
    position = 0
    try:
        token = next(generator)
        while True:
            tokens.append(token)
            assert isinstance(token, Burst)
            payload = bytes(channel_bits[position : position + token.count])
            assert len(payload) == token.count, "script shorter than token"
            position += token.count
            token = generator.send(payload)
    except StopIteration as stop:
        assert position == len(channel_bits), "script longer than tokens"
        return tokens, stop.value
    raise AssertionError("generator did not finish on scripted input")


class TestRepeatedBit:
    def test_single_burst_token(self):
        tokens, _ = _drive_tokens(repeated_bit(1, 3), [1, 1, 1])
        assert len(tokens) == 1
        assert type(tokens[0]) is Burst
        assert tokens[0].bit == 1
        assert tokens[0].count == 3

    def test_majority_decoding(self):
        _, decoded = _drive_tokens(repeated_bit(0, 3), [1, 0, 1])
        assert decoded == 1
        _, decoded = _drive_tokens(repeated_bit(0, 3), [0, 1, 0])
        assert decoded == 0

    def test_tie_goes_to_zero(self):
        _, decoded = _drive_tokens(repeated_bit(0, 4), [1, 1, 0, 0])
        assert decoded == 0

    def test_single_repetition(self):
        tokens, decoded = _drive_tokens(repeated_bit(1, 1), [0])
        assert tokens[0].count == 1
        assert decoded == 0

    def test_desugared_beeps_bit_every_round(self):
        with batch_tokens(False):
            beeped, _ = _drive_bits(repeated_bit(1, 3), [1, 1, 1])
        assert beeped == [1, 1, 1]

    def test_desugared_matches_token_decoding(self):
        script = [1, 0, 1, 1, 0]
        _, from_tokens = _drive_tokens(repeated_bit(0, 5), script)
        with batch_tokens(False):
            _, from_bits = _drive_bits(repeated_bit(0, 5), script)
        assert from_tokens == from_bits == 1


class TestTransmitWord:
    def test_one_token_per_constant_run(self):
        tokens, _ = _drive_tokens(
            transmit_word((1, 1, 0, 0, 0, 1)), [0, 0, 0, 0, 0, 0]
        )
        assert [(t.bit, t.count) for t in tokens] == [(1, 2), (0, 3), (1, 1)]

    def test_zero_runs_are_silence_tokens(self):
        tokens, _ = _drive_tokens(transmit_word((0, 0, 0)), [1, 0, 1])
        assert len(tokens) == 1
        assert type(tokens[0]) is Silence
        assert tokens[0].count == 3

    def test_returns_received_word(self):
        _, received = _drive_tokens(transmit_word((0, 1, 0)), [1, 0, 1])
        assert received == (1, 0, 1)

    def test_empty_word(self):
        generator = transmit_word(())
        try:
            next(generator)
        except StopIteration as stop:
            assert stop.value == ()
        else:
            raise AssertionError("empty word should finish immediately")

    def test_desugared_beeps_word_in_order(self):
        with batch_tokens(False):
            beeped, received = _drive_bits(transmit_word((1, 0, 1)), [1, 0, 1])
        assert beeped == [1, 0, 1]
        assert received == (1, 0, 1)

    def test_desugared_matches_token_decoding(self):
        word = (1, 0, 0, 1, 1, 0)
        script = [0, 1, 1, 0, 1, 0]
        _, from_tokens = _drive_tokens(transmit_word(word), script)
        with batch_tokens(False):
            _, from_bits = _drive_bits(transmit_word(word), script)
        assert from_tokens == from_bits


class TestSilentRounds:
    def test_single_silence_token(self):
        tokens, heard = _drive_tokens(silent_rounds(3), [0, 1, 0])
        assert len(tokens) == 1
        assert type(tokens[0]) is Silence
        assert tokens[0].bit == 0
        assert tokens[0].count == 3
        assert heard == (0, 1, 0)

    def test_desugared_beeps_zeros(self):
        with batch_tokens(False):
            beeped, heard = _drive_bits(silent_rounds(2), [1, 1])
        assert beeped == [0, 0]
        assert heard == (1, 1)


class TestBatchTokensToggle:
    def test_default_is_enabled(self):
        assert batch_tokens_enabled()

    def test_context_manager_restores_on_exit(self):
        with batch_tokens(False):
            assert not batch_tokens_enabled()
            with batch_tokens(True):
                assert batch_tokens_enabled()
            assert not batch_tokens_enabled()
        assert batch_tokens_enabled()

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with batch_tokens(False):
                raise RuntimeError("boom")
        assert batch_tokens_enabled()

    def test_mode_is_read_when_the_generator_starts(self):
        generator = repeated_bit(1, 2)  # created in token mode
        with batch_tokens(False):
            first = next(generator)  # ...but *started* desugared
        assert first == 1
