"""Cross-backend equivalence: VectorizedRunner vs SerialRunner.

The vectorized backend's contract is *bitwise* agreement with the scalar
reference, per trial: same ``TrialRecord`` for the same ``(seed, index)``
regardless of backend.  These tests drive both runners over the full
channel-family grid (the ten families of ``test_legacy_equivalence``) and
all four registry simulators (repetition, chunk-commit, hierarchical,
rewind), mirroring that suite's structure:

* where the vectorized backend has a collapsed form (chunk-commit and
  rewind over the correlated shared-bit channels), the records must match
  bitwise *and* the batch must actually have run collapsed (no silent
  fallback making the test vacuous);
* everywhere else the backend must take its scalar fallback and still
  produce identical records — including identical *exceptions* when a
  scheme rejects a channel family outright;
* sampled vectorized trials replay bitwise on the scalar engine from
  their ``(seed, index)`` alone — the replayability the determinism
  contract promises.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.channels import (
    BudgetedAdversaryChannel,
    BurstNoiseChannel,
    CorrectingAdversaryChannel,
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
    ScriptedChannel,
    SharedFlipReductionChannel,
    SuppressionNoiseChannel,
)
from repro.parallel import (
    ChannelSpec,
    SerialRunner,
    SimulationExecutor,
    SimulatorSpec,
    run_trial,
)
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    RepetitionSimulator,
    RewindSimulator,
)
from repro.tasks import ParityTask
from repro.vectorized import VectorizedRunner

# The ten channel families of test_legacy_equivalence, as picklable specs.
CHANNEL_SPECS = {
    "noiseless": ChannelSpec.of(NoiselessChannel, seed_kwarg=None),
    "correlated": ChannelSpec.of(CorrelatedNoiseChannel, 0.15),
    "one-sided": ChannelSpec.of(OneSidedNoiseChannel, 1 / 3),
    "suppression": ChannelSpec.of(SuppressionNoiseChannel, 0.2),
    "independent": ChannelSpec.of(IndependentNoiseChannel, 0.15),
    "burst": ChannelSpec.of(BurstNoiseChannel, 0.01, 0.5, 0.05, 0.2),
    "reduction": ChannelSpec.of(SharedFlipReductionChannel),
    "correcting": ChannelSpec.of(CorrectingAdversaryChannel, 0.25),
    "budgeted": ChannelSpec.of(BudgetedAdversaryChannel, 5, seed_kwarg=None),
    "scripted": ChannelSpec.of(
        ScriptedChannel, [3, 7, 11], seed_kwarg=None
    ),
}

SIMULATORS = {
    "repetition": SimulatorSpec.of(RepetitionSimulator),
    "chunk": SimulatorSpec.of(ChunkCommitSimulator),
    "hierarchical": SimulatorSpec.of(HierarchicalSimulator),
    "rewind": SimulatorSpec.of(RewindSimulator),
}

#: (simulator, channel) pairs the backend collapses — everything else
#: must take the scalar fallback.  All four registry simulators collapse
#: over the four shared-bit families (for hierarchical, "collapsed"
#: includes raising the same requires-a-correlated-channel error the
#: scalar scheme raises on families it rejects).
COLLAPSED = {
    (simulator, channel)
    for simulator in ("chunk", "rewind", "repetition", "hierarchical")
    for channel in ("noiseless", "correlated", "one-sided", "suppression")
}

TRIALS = 4


def _run(runner, task, executor, seed):
    """Records, or the raised exception (compared across backends)."""
    try:
        return runner.run_trials(task, executor, TRIALS, seed=seed).records
    except Exception as exc:  # noqa: BLE001 - parity is the assertion
        return (type(exc), str(exc))


class TestCrossBackendEquivalence:
    @pytest.mark.parametrize("channel_name", sorted(CHANNEL_SPECS))
    @pytest.mark.parametrize("simulator_name", sorted(SIMULATORS))
    @pytest.mark.parametrize("n", [2, 5])
    def test_records_bitwise_equal(self, channel_name, simulator_name, n):
        task = ParityTask(n)
        executor = SimulationExecutor(
            task=task,
            channel=CHANNEL_SPECS[channel_name],
            simulator=SIMULATORS[simulator_name],
        )
        seed = 1000 * n + 7
        serial = _run(SerialRunner(), task, executor, seed)
        vectorized_runner = VectorizedRunner()
        vectorized = _run(vectorized_runner, task, executor, seed)
        assert vectorized == serial
        if isinstance(serial, tuple):
            return  # both raised identically; fallback state is moot
        if (simulator_name, channel_name) in COLLAPSED:
            assert vectorized_runner.last_fallback_reason is None
        else:
            assert vectorized_runner.last_fallback_reason is not None

    @pytest.mark.parametrize("simulator_name", ["chunk", "rewind"])
    def test_sampled_trials_replay_on_scalar_engine(self, simulator_name):
        """Any trial a vectorized sweep records can be reproduced by the
        scalar ``run_trial`` from its ``(seed, index)`` alone."""
        task = ParityTask(3)
        executor = SimulationExecutor(
            task=task,
            channel=CHANNEL_SPECS["correlated"],
            simulator=SIMULATORS[simulator_name],
        )
        runner = VectorizedRunner()
        batch = runner.run_trials(task, executor, 6, seed=99)
        assert runner.last_fallback_reason is None
        for index in (0, 2, 5):  # sampled subset
            assert batch.records[index] == run_trial(
                task, executor, 99, index
            )

    def test_observer_events_match(self):
        """Tracing emits the same trial events from either backend."""
        from repro.observe import MetricsCollector, Observer

        task = ParityTask(3)
        executor = SimulationExecutor(
            task=task,
            channel=CHANNEL_SPECS["correlated"],
            simulator=SIMULATORS["chunk"],
        )

        def trial_events(runner):
            collector = MetricsCollector()
            with Observer([collector]) as observer:
                runner.run_trials(task, executor, 3, seed=5, observe=observer)
            return [
                {
                    key: value
                    for key, value in event.items()
                    if key not in ("ts", "elapsed_s")
                }
                for event in collector.events
                if event["event"] == "trial"
            ]

        assert trial_events(VectorizedRunner()) == trial_events(
            SerialRunner()
        )

    def test_epsilon_grid_bitwise_equal(self):
        """Across the epsilon range (including 0), chunk and rewind
        records agree bitwise between backends."""
        for epsilon in (0.0, 0.05, 0.3):
            for simulator_name in ("chunk", "rewind"):
                task = ParityTask(4)
                executor = SimulationExecutor(
                    task=task,
                    channel=ChannelSpec.of(CorrelatedNoiseChannel, epsilon),
                    simulator=SIMULATORS[simulator_name],
                )
                serial = _run(SerialRunner(), task, executor, 11)
                vectorized = _run(VectorizedRunner(), task, executor, 11)
                assert vectorized == serial, (epsilon, simulator_name)
