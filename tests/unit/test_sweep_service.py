"""Unit tests for the sweep service (``repro.service``).

The load-bearing properties:

* cache keys are canonical — equal sweeps address equal keys, any
  result-shaping change addresses fresh ones;
* the store round-trips ``SweepPoint`` payloads bitwise and survives
  corruption by recomputing, never by serving garbage;
* the resumable driver returns results bitwise identical to a cold
  :func:`run_sweep` — cold, warm (all hits), interrupted-then-resumed,
  and sharded-then-merged, on both runner backends.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.sweep import SweepPoint, SweepSpec, run_sweep
from repro.errors import ConfigurationError
from repro.observe import MetricsCollector, Observer
from repro.parallel import ProcessPoolRunner, SerialRunner
from repro.service import (
    CACHE_SCHEMA_VERSION,
    ResultStore,
    SweepGrid,
    canonical_json,
    content_key,
    merge_sweep,
    plan_shards,
    point_key,
    run_sweep_resumable,
    sweep_status,
    validate_shards,
)
from repro.service.shards import ShardSpec


def small_grid(**overrides) -> SweepGrid:
    defaults = dict(
        task="parity", ns=(3, 4, 5, 6), trials=3, seed=11, epsilon=0.1
    )
    defaults.update(overrides)
    return SweepGrid(**defaults)


def dicts(points) -> list[dict]:
    return [point.to_dict() for point in points]


# ---------------------------------------------------------------------------
# canonical JSON + content keys
# ---------------------------------------------------------------------------


class TestCanon:
    def test_canonical_json_sorts_keys(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_canonical_json_is_compact(self):
        assert " " not in canonical_json({"a": [1, 2], "b": {"c": 3}})

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": math.nan})

    def test_content_key_ignores_dict_order(self):
        assert content_key({"a": 1, "b": 2}) == content_key({"b": 2, "a": 1})

    def test_content_key_is_hex_128_bit(self):
        key = content_key({"a": 1})
        assert len(key) == 32
        int(key, 16)

    def test_point_key_sensitivity(self):
        spec = SweepSpec(trials=5, seed=3)
        workload = {"task": "parity"}
        base = point_key(spec, workload, 0)
        assert base == point_key(SweepSpec(trials=5, seed=3), workload, 0)
        assert base != point_key(spec, workload, 1)
        assert base != point_key(SweepSpec(trials=6, seed=3), workload, 0)
        assert base != point_key(SweepSpec(trials=5, seed=4), workload, 0)
        assert base != point_key(spec, {"task": "or"}, 0)

    def test_point_key_ignores_runner_and_observe(self):
        workload = {"task": "parity"}
        plain = SweepSpec(trials=5, seed=3)
        dressed = SweepSpec(
            trials=5,
            seed=3,
            runner=SerialRunner(),
            observe=Observer([MetricsCollector()]),
        )
        assert point_key(plain, workload, 2) == point_key(dressed, workload, 2)


# ---------------------------------------------------------------------------
# SweepSpec / SweepPoint serialization (satellite)
# ---------------------------------------------------------------------------


class TestSweepSpecJson:
    def test_round_trip(self):
        spec = SweepSpec(trials=17, seed=93)
        revived = SweepSpec.from_json(spec.to_json())
        assert revived.trials == 17
        assert revived.seed == 93
        assert revived.to_json() == spec.to_json()

    def test_canonical_bytes(self):
        assert SweepSpec(trials=2, seed=5).to_json() == (
            '{"schema":1,"seed":5,"trials":2}'
        )

    def test_runner_observe_not_serialized(self):
        dressed = SweepSpec(trials=2, seed=5, runner=SerialRunner())
        assert dressed.to_json() == SweepSpec(trials=2, seed=5).to_json()

    def test_from_json_accepts_dict(self):
        revived = SweepSpec.from_json({"schema": 1, "trials": 3, "seed": 0})
        assert revived.trials == 3

    def test_from_json_rejects_other_schema(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_json({"schema": 99, "trials": 3, "seed": 0})

    def test_from_json_reattaches_runner(self):
        runner = SerialRunner()
        revived = SweepSpec.from_json(
            SweepSpec(trials=2, seed=5).to_json(), runner=runner
        )
        assert revived.runner is runner


class TestSweepPointFromDict:
    def test_round_trips_through_json(self):
        grid = small_grid(ns=(4,), trials=4)
        [point] = run_sweep(grid.ns, grid.build_point, grid.spec())
        payload = json.loads(json.dumps(point.to_dict()))
        revived = SweepPoint.from_dict(payload)
        assert revived.to_dict() == point.to_dict()
        assert revived.success == point.success
        assert revived.mean_rounds == point.mean_rounds
        assert revived.mean_overhead == point.mean_overhead
        assert revived.extras == point.extras

    def test_timing_excluded_by_default(self):
        grid = small_grid(ns=(4,), trials=2)
        [point] = run_sweep(grid.ns, grid.build_point, grid.spec())
        assert point.timing  # the live run measured something
        revived = SweepPoint.from_dict(point.to_dict())
        assert revived.timing == {}


# ---------------------------------------------------------------------------
# SweepGrid
# ---------------------------------------------------------------------------


class TestSweepGrid:
    def test_json_round_trip(self):
        grid = small_grid()
        revived = SweepGrid.from_json(grid.to_json())
        assert revived == grid
        assert revived.grid_key() == grid.grid_key()

    def test_grid_key_sensitivity(self):
        base = small_grid()
        assert base.grid_key() != small_grid(trials=4).grid_key()
        assert base.grid_key() != small_grid(seed=12).grid_key()
        assert base.grid_key() != small_grid(task="or").grid_key()
        assert base.grid_key() != small_grid(ns=(3, 4, 5)).grid_key()

    def test_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError):
            SweepGrid(task="nope")
        with pytest.raises(ConfigurationError):
            SweepGrid(channel="nope")
        with pytest.raises(ConfigurationError):
            SweepGrid(simulator="nope")

    def test_rejects_empty_grid_and_bad_trials(self):
        with pytest.raises(ConfigurationError):
            SweepGrid(ns=())
        with pytest.raises(ConfigurationError):
            SweepGrid(trials=0)

    def test_from_json_rejects_other_schema(self):
        payload = json.loads(small_grid().to_json())
        payload["schema"] = 99
        with pytest.raises(ConfigurationError):
            SweepGrid.from_json(payload)

    def test_point_key_bounds(self):
        grid = small_grid()
        with pytest.raises(ConfigurationError):
            grid.point_key(grid.total_points)

    def test_build_point_matches_run_sweep_contract(self):
        grid = small_grid(ns=(4,))
        task, executor, params = grid.build_point(4)
        assert task.n_parties == 4
        assert params == {"n": 4, "epsilon": 0.1}
        assert callable(executor)


# ---------------------------------------------------------------------------
# ResultStore
# ---------------------------------------------------------------------------


class TestResultStore:
    def put_one(self, store, key="a" * 32):
        grid = small_grid(ns=(4,), trials=2)
        [point] = run_sweep(grid.ns, grid.build_point, grid.spec())
        store.put(key, point, meta={"index": 0})
        return key, point

    def test_round_trip_bitwise(self, tmp_path):
        store = ResultStore(tmp_path)
        key, point = self.put_one(store)
        cached = store.get(key)
        assert cached is not None
        assert cached.to_dict() == point.to_dict()

    def test_miss_on_absent(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("f" * 32) is None
        assert store.counters["misses"] == 1
        assert store.counters["hits"] == 0

    def test_counters_and_events(self, tmp_path):
        store = ResultStore(tmp_path)
        collector = MetricsCollector()
        observer = Observer([collector])
        key, _ = self.put_one(store)
        store.get("0" * 32, observe=observer, index=5)
        store.get(key, observe=observer, index=0)
        assert store.counters == {
            "hits": 1,
            "misses": 1,
            "puts": 1,
            "invalid": 0,
        }
        assert collector.count("cache_miss") == 1
        assert collector.count("cache_hit") == 1
        assert collector.events_of("cache_hit")[0]["index"] == 0

    def test_corrupt_envelope_self_heals(self, tmp_path):
        store = ResultStore(tmp_path)
        key, _ = self.put_one(store)
        store.object_path(key).write_text("{ truncated", encoding="utf-8")
        assert store.get(key) is None
        assert store.counters["invalid"] == 1
        assert not store.object_path(key).exists()

    def test_key_mismatch_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        key, _ = self.put_one(store)
        other = "b" * 32
        path = store.object_path(other)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            store.object_path(key).read_text(encoding="utf-8"),
            encoding="utf-8",
        )
        assert store.get(other) is None  # envelope names a different key
        assert store.counters["invalid"] == 1

    def test_wrong_schema_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        key, _ = self.put_one(store)
        path = store.object_path(key)
        data = json.loads(path.read_text(encoding="utf-8"))
        data["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(data), encoding="utf-8")
        assert store.get(key) is None

    def test_keys_listing(self, tmp_path):
        store = ResultStore(tmp_path)
        key, _ = self.put_one(store)
        assert list(store.keys()) == [key]

    def test_contains_is_counter_free(self, tmp_path):
        store = ResultStore(tmp_path)
        key, _ = self.put_one(store)
        assert store.contains(key)
        assert not store.contains("c" * 32)
        assert store.counters["hits"] == 0
        assert store.counters["misses"] == 0

    def test_gc_keeps_and_removes(self, tmp_path):
        store = ResultStore(tmp_path)
        key, point = self.put_one(store)
        store.put("d" * 32, point)
        stale = store.objects_dir / "ee" / ".tmp-x-123"
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_text("partial", encoding="utf-8")
        stats = store.gc(keep={key})
        assert stats == {"removed": 1, "kept": 1, "tmp_removed": 1}
        assert store.contains(key)
        assert not store.contains("d" * 32)
        assert not stale.exists()

    def test_manifests_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        grid = small_grid()
        store.write_manifest(grid.grid_key(), {"grid": grid.workload()})
        manifests = store.manifests()
        assert grid.grid_key() in manifests
        revived = SweepGrid.from_json(manifests[grid.grid_key()]["grid"])
        assert revived == grid


# ---------------------------------------------------------------------------
# resumable driver
# ---------------------------------------------------------------------------


class FailAfter:
    """A point builder that raises when building point ``fail_index``."""

    def __init__(self, grid: SweepGrid, fail_index: int) -> None:
        self.grid = grid
        self.fail_index = fail_index
        self.built: list[int] = []

    def __call__(self, n: int):
        index = self.grid.ns.index(n)
        if index == self.fail_index:
            raise RuntimeError(f"injected crash at point {index}")
        self.built.append(index)
        return self.grid.build_point(n)


def both_runners():
    return [SerialRunner(), ProcessPoolRunner(workers=2)]


class TestRunSweepResumable:
    def test_cold_run_matches_run_sweep_bitwise(self, tmp_path):
        grid = small_grid()
        cold = run_sweep(grid.ns, grid.build_point, grid.spec())
        cached = run_sweep_resumable(
            grid.ns,
            grid.build_point,
            grid.spec(),
            store=ResultStore(tmp_path),
            workload=grid.workload(),
        )
        assert dicts(cached) == dicts(cold)

    def test_warm_run_recomputes_nothing(self, tmp_path):
        grid = small_grid()
        store = ResultStore(tmp_path)
        first = run_sweep_resumable(
            grid.ns,
            grid.build_point,
            grid.spec(),
            store=store,
            workload=grid.workload(),
        )

        def exploding_builder(n):
            raise AssertionError("warm run must not rebuild any point")

        warm = run_sweep_resumable(
            grid.ns,
            exploding_builder,
            grid.spec(),
            store=store,
            workload=grid.workload(),
        )
        assert dicts(warm) == dicts(first)
        assert store.counters["hits"] == grid.total_points

    def test_emits_cache_and_run_events(self, tmp_path):
        grid = small_grid(ns=(3, 4), trials=2)
        store = ResultStore(tmp_path)
        collector = MetricsCollector()
        run_sweep_resumable(
            grid.ns,
            grid.build_point,
            grid.spec(observe=Observer([collector])),
            store=store,
            workload=grid.workload(),
        )
        assert collector.count("cache_miss") == 2
        assert collector.count("cache_put") == 2
        assert collector.count("sweep_point") == 2
        [run_event] = collector.events_of("sweep_run")
        assert run_event["total"] == 2
        assert run_event["computed"] == 2
        assert run_event["hits"] == 0

    def test_rejects_out_of_range_indices(self, tmp_path):
        grid = small_grid()
        with pytest.raises(ConfigurationError):
            run_sweep_resumable(
                grid.ns,
                grid.build_point,
                grid.spec(),
                store=ResultStore(tmp_path),
                workload=grid.workload(),
                indices=[0, grid.total_points],
            )

    @pytest.mark.parametrize("runner", both_runners(), ids=["serial", "pool"])
    def test_interrupt_then_resume_is_bitwise_identical(
        self, tmp_path, runner
    ):
        """Kill the driver mid-sweep (exception after point j), resume,
        and land bitwise on the uninterrupted result — both backends."""
        grid = small_grid()
        fail_at = 2
        store = ResultStore(tmp_path)
        try:
            with pytest.raises(RuntimeError, match="injected crash"):
                run_sweep_resumable(
                    grid.ns,
                    FailAfter(grid, fail_at),
                    grid.spec(runner=runner),
                    store=store,
                    workload=grid.workload(),
                )
            # Everything before the crash is checkpointed, nothing after.
            status = sweep_status(
                grid.spec(), grid.workload(), grid.total_points, store
            )
            assert status["done"] == fail_at
            assert status["missing"] == [fail_at, fail_at + 1]

            resumed = run_sweep_resumable(
                grid.ns,
                grid.build_point,
                grid.spec(runner=runner),
                store=store,
                workload=grid.workload(),
            )
            cold = run_sweep(
                grid.ns, grid.build_point, grid.spec(runner=runner)
            )
            assert dicts(resumed) == dicts(cold)
            # The resume computed exactly the missing tail.
            assert store.counters["puts"] == grid.total_points
            assert store.counters["hits"] == fail_at
        finally:
            runner.close()

    def test_serial_and_pool_share_the_cache(self, tmp_path):
        """Backend never reaches the cache key: a pool run hits what a
        serial run checkpointed, and vice versa."""
        grid = small_grid(ns=(3, 4), trials=2)
        store = ResultStore(tmp_path)
        serial = run_sweep_resumable(
            grid.ns,
            grid.build_point,
            grid.spec(runner=SerialRunner()),
            store=store,
            workload=grid.workload(),
        )
        pool = ProcessPoolRunner(workers=2)
        try:
            warm = run_sweep_resumable(
                grid.ns,
                grid.build_point,
                grid.spec(runner=pool),
                store=store,
                workload=grid.workload(),
            )
        finally:
            pool.close()
        assert dicts(warm) == dicts(serial)
        assert store.counters["hits"] == 2

    def test_vectorized_warm_cache_is_backend_invariant(self, tmp_path):
        """A cache warmed by the vectorized backend serves serial runs
        (and vice versa) with zero recompute — the key excludes the
        runner, and the records it addresses are bitwise identical."""
        pytest.importorskip("numpy")
        from repro.vectorized import VectorizedRunner

        grid = small_grid(ns=(3, 4), trials=2)
        store = ResultStore(tmp_path)
        cold = run_sweep_resumable(
            grid.ns,
            grid.build_point,
            grid.spec(runner=VectorizedRunner()),
            store=store,
            workload=grid.workload(),
        )
        assert store.counters["puts"] == 2
        warm = run_sweep_resumable(
            grid.ns,
            grid.build_point,
            grid.spec(runner=SerialRunner()),
            store=store,
            workload=grid.workload(),
        )
        assert dicts(warm) == dicts(cold)
        assert store.counters["hits"] == 2
        assert store.counters["puts"] == 2  # nothing recomputed


class TestSweepStatus:
    def test_status_counts_checkpoints(self, tmp_path):
        grid = small_grid()
        store = ResultStore(tmp_path)
        run_sweep_resumable(
            grid.ns,
            grid.build_point,
            grid.spec(),
            store=store,
            workload=grid.workload(),
            indices=[0, 2],
        )
        status = sweep_status(
            grid.spec(), grid.workload(), grid.total_points, store
        )
        assert status == {"total": 4, "done": 2, "missing": [1, 3]}


# ---------------------------------------------------------------------------
# shards
# ---------------------------------------------------------------------------


class TestShardPlanner:
    def test_plan_is_disjoint_and_complete(self):
        for total in (1, 2, 5, 8, 13):
            for count in (1, 2, 3):
                if count > total:
                    continue
                shards = plan_shards(total, count)
                validate_shards(shards, total)
                sizes = [len(shard.indices) for shard in shards]
                assert max(sizes) - min(sizes) <= 1

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            plan_shards(4, 0)
        with pytest.raises(ConfigurationError):
            plan_shards(4, 5)

    def test_validate_catches_overlap(self):
        shards = [
            ShardSpec(0, 2, (0, 1)),
            ShardSpec(1, 2, (1, 2)),
        ]
        with pytest.raises(ConfigurationError, match="overlap"):
            validate_shards(shards, 3)

    def test_validate_catches_gap(self):
        shards = [
            ShardSpec(0, 2, (0,)),
            ShardSpec(1, 2, (2,)),
        ]
        with pytest.raises(ConfigurationError, match="missing"):
            validate_shards(shards, 3)

    def test_validate_catches_inconsistent_of(self):
        shards = [ShardSpec(0, 3, (0, 1, 2))]
        with pytest.raises(ConfigurationError, match="of="):
            validate_shards(shards, 3)


class TestShardedRunAndMerge:
    def test_sharded_runs_merge_to_cold_result(self, tmp_path):
        grid = small_grid()
        store = ResultStore(tmp_path)
        shards = plan_shards(grid.total_points, 3)
        validate_shards(shards, grid.total_points)
        # Shards run in scrambled order, like independent machines would.
        for shard in reversed(shards):
            run_sweep_resumable(
                grid.ns,
                grid.build_point,
                grid.spec(),
                store=store,
                workload=grid.workload(),
                indices=shard.indices,
            )
        merged = merge_sweep(
            grid.spec(), grid.workload(), grid.total_points, store
        )
        cold = run_sweep(grid.ns, grid.build_point, grid.spec())
        assert dicts(merged) == dicts(cold)

    def test_merge_reports_missing_indices(self, tmp_path):
        grid = small_grid()
        store = ResultStore(tmp_path)
        run_sweep_resumable(
            grid.ns,
            grid.build_point,
            grid.spec(),
            store=store,
            workload=grid.workload(),
            indices=[0, 3],
        )
        with pytest.raises(ConfigurationError, match=r"\[1, 2\]"):
            merge_sweep(
                grid.spec(), grid.workload(), grid.total_points, store
            )
