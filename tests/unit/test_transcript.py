"""Unit tests for transcripts and round records."""

import pytest

from repro.core.transcript import RoundRecord, Transcript
from repro.errors import TranscriptError


def _record(sent, received):
    or_value = 1 if any(sent) else 0
    return RoundRecord(sent=tuple(sent), or_value=or_value, received=tuple(received))


class TestRoundRecord:
    def test_common_view(self):
        record = _record((1, 0), (1, 1))
        assert record.common == 1

    def test_common_raises_on_divergence(self):
        record = _record((1, 0), (1, 0))
        with pytest.raises(TranscriptError):
            record.common

    def test_noisy_detection(self):
        assert _record((0, 0), (1, 1)).noisy
        assert not _record((1, 0), (1, 1)).noisy

    def test_partial_divergence_is_noisy(self):
        assert _record((1, 0), (1, 0)).noisy


class TestTranscript:
    def test_append_and_len(self):
        transcript = Transcript(2)
        transcript.append(_record((1, 0), (1, 1)))
        transcript.append(_record((0, 0), (0, 0)))
        assert len(transcript) == 2

    def test_indexing_and_iteration(self):
        transcript = Transcript(2)
        records = [_record((1, 0), (1, 1)), _record((0, 0), (0, 0))]
        for record in records:
            transcript.append(record)
        assert transcript[0] is records[0]
        assert list(transcript) == records

    def test_common_view(self):
        transcript = Transcript(2)
        transcript.append(_record((1, 0), (1, 1)))
        transcript.append(_record((0, 0), (0, 0)))
        assert transcript.common_view() == (1, 0)

    def test_party_view(self):
        transcript = Transcript(2)
        transcript.append(RoundRecord(sent=(0, 0), or_value=0, received=(1, 0)))
        assert transcript.view(0) == (1,)
        assert transcript.view(1) == (0,)

    def test_view_index_validation(self):
        transcript = Transcript(2)
        with pytest.raises(TranscriptError):
            transcript.view(2)
        with pytest.raises(TranscriptError):
            transcript.view(-1)

    def test_or_values(self):
        transcript = Transcript(2)
        transcript.append(_record((1, 1), (1, 1)))
        transcript.append(_record((0, 0), (1, 1)))
        assert transcript.or_values() == (1, 0)

    def test_sent_bits(self):
        transcript = Transcript(2)
        transcript.append(_record((1, 0), (1, 1)))
        transcript.append(_record((0, 1), (1, 1)))
        assert transcript.sent_bits(0) == (1, 0)
        assert transcript.sent_bits(1) == (0, 1)

    def test_sent_bits_requires_recording(self):
        transcript = Transcript(1)
        transcript.append(RoundRecord(sent=None, or_value=0, received=(0,)))
        with pytest.raises(TranscriptError):
            transcript.sent_bits(0)

    def test_noise_positions(self):
        transcript = Transcript(1)
        transcript.append(RoundRecord(sent=(0,), or_value=0, received=(1,)))
        transcript.append(RoundRecord(sent=(0,), or_value=0, received=(0,)))
        transcript.append(RoundRecord(sent=(1,), or_value=1, received=(0,)))
        assert transcript.noise_positions() == (0, 2)

    def test_arity_validation(self):
        transcript = Transcript(2)
        with pytest.raises(TranscriptError):
            transcript.append(
                RoundRecord(sent=(1,), or_value=1, received=(1, 1))
            )
        with pytest.raises(TranscriptError):
            transcript.append(
                RoundRecord(sent=None, or_value=1, received=(1,))
            )

    def test_zero_parties_rejected(self):
        with pytest.raises(TranscriptError):
            Transcript(0)
