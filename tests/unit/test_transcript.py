"""Unit tests for transcripts and round records."""

import pytest

from repro.core.transcript import RoundRecord, Transcript
from repro.errors import TranscriptError


def _record(sent, received):
    or_value = 1 if any(sent) else 0
    return RoundRecord(sent=tuple(sent), or_value=or_value, received=tuple(received))


class TestRoundRecord:
    def test_common_view(self):
        record = _record((1, 0), (1, 1))
        assert record.common == 1

    def test_common_raises_on_divergence(self):
        record = _record((1, 0), (1, 0))
        with pytest.raises(TranscriptError):
            record.common

    def test_noisy_detection(self):
        assert _record((0, 0), (1, 1)).noisy
        assert not _record((1, 0), (1, 1)).noisy

    def test_partial_divergence_is_noisy(self):
        assert _record((1, 0), (1, 0)).noisy


class TestTranscript:
    def test_append_and_len(self):
        transcript = Transcript(2)
        transcript.append(_record((1, 0), (1, 1)))
        transcript.append(_record((0, 0), (0, 0)))
        assert len(transcript) == 2

    def test_indexing_and_iteration(self):
        transcript = Transcript(2)
        records = [_record((1, 0), (1, 1)), _record((0, 0), (0, 0))]
        for record in records:
            transcript.append(record)
        # Columnar storage materializes records lazily, so identity is not
        # preserved — equality of the frozen dataclass is the contract.
        assert transcript[0] == records[0]
        assert list(transcript) == records

    def test_common_view(self):
        transcript = Transcript(2)
        transcript.append(_record((1, 0), (1, 1)))
        transcript.append(_record((0, 0), (0, 0)))
        assert transcript.common_view() == (1, 0)

    def test_party_view(self):
        transcript = Transcript(2)
        transcript.append(RoundRecord(sent=(0, 0), or_value=0, received=(1, 0)))
        assert transcript.view(0) == (1,)
        assert transcript.view(1) == (0,)

    def test_view_index_validation(self):
        transcript = Transcript(2)
        with pytest.raises(TranscriptError):
            transcript.view(2)
        with pytest.raises(TranscriptError):
            transcript.view(-1)

    def test_or_values(self):
        transcript = Transcript(2)
        transcript.append(_record((1, 1), (1, 1)))
        transcript.append(_record((0, 0), (1, 1)))
        assert transcript.or_values() == (1, 0)

    def test_sent_bits(self):
        transcript = Transcript(2)
        transcript.append(_record((1, 0), (1, 1)))
        transcript.append(_record((0, 1), (1, 1)))
        assert transcript.sent_bits(0) == (1, 0)
        assert transcript.sent_bits(1) == (0, 1)

    def test_sent_bits_requires_recording(self):
        transcript = Transcript(1)
        transcript.append(RoundRecord(sent=None, or_value=0, received=(0,)))
        with pytest.raises(TranscriptError):
            transcript.sent_bits(0)

    def test_noise_positions(self):
        transcript = Transcript(1)
        transcript.append(RoundRecord(sent=(0,), or_value=0, received=(1,)))
        transcript.append(RoundRecord(sent=(0,), or_value=0, received=(0,)))
        transcript.append(RoundRecord(sent=(1,), or_value=1, received=(0,)))
        assert transcript.noise_positions() == (0, 2)

    def test_arity_validation(self):
        transcript = Transcript(2)
        with pytest.raises(TranscriptError):
            transcript.append(
                RoundRecord(sent=(1,), or_value=1, received=(1, 1))
            )
        with pytest.raises(TranscriptError):
            transcript.append(
                RoundRecord(sent=None, or_value=1, received=(1,))
            )

    def test_zero_parties_rejected(self):
        with pytest.raises(TranscriptError):
            Transcript(0)


class TestColumnarStorage:
    """The bytearray-backed layout behind the record interface."""

    def test_append_raw_shared_bit(self):
        transcript = Transcript(3)
        transcript.append_raw([1, 0, 0], 1, 1)
        transcript.append_raw([0, 0, 0], 0, 1)
        assert transcript.common_view() == (1, 1)
        assert transcript.or_values() == (1, 0)
        assert transcript[1] == RoundRecord(
            sent=(0, 0, 0), or_value=0, received=(1, 1, 1)
        )

    def test_append_raw_word_matches_append(self):
        via_records = Transcript(2)
        via_raw = Transcript(2)
        rounds = [((1, 0), 1, (1, 1)), ((0, 0), 0, (0, 1))]
        for sent, or_value, received in rounds:
            via_records.append(
                RoundRecord(sent=sent, or_value=or_value, received=received)
            )
            via_raw.append_raw(list(sent), or_value, received)
        assert list(via_raw) == list(via_records)
        assert via_raw.noisy_count == via_records.noisy_count == 1

    def test_noisy_count_matches_noise_positions(self):
        transcript = Transcript(1)
        transcript.append_raw([0], 0, 1)
        transcript.append_raw([1], 1, 1)
        transcript.append_raw([1], 1, 0)
        assert transcript.noisy_count == 2
        assert len(transcript.noise_positions()) == transcript.noisy_count

    def test_divergence_switches_to_per_party_columns(self):
        transcript = Transcript(2)
        transcript.append_raw([0, 0], 0, 0)  # shared path
        transcript.append_raw([1, 0], 1, (1, 0))  # divergent word
        transcript.append_raw([0, 0], 0, 1)  # shared again
        assert transcript.view(0) == (0, 1, 1)
        assert transcript.view(1) == (0, 0, 1)
        with pytest.raises(TranscriptError):
            transcript.common_view()

    def test_unrecorded_sent_skips_columns(self):
        transcript = Transcript(2)
        transcript.append_raw(None, 1, 1)
        assert len(transcript) == 1
        assert transcript[0].sent is None
        with pytest.raises(TranscriptError):
            transcript.sent_bits(0)

    def test_mixed_sent_recording_round_trips(self):
        transcript = Transcript(2)
        transcript.append_raw(None, 0, 0)
        transcript.append_raw([1, 0], 1, 1)
        assert transcript[0].sent is None
        assert transcript[1].sent == (1, 0)
        with pytest.raises(TranscriptError):
            transcript.sent_bits(0)

    def test_negative_indexing_and_slices(self):
        transcript = Transcript(1)
        for bit in (0, 1, 0):
            transcript.append_raw([bit], bit, bit)
        assert transcript[-1].or_value == 0
        assert [r.or_value for r in transcript[1:]] == [1, 0]
