"""Unit tests for feasible sets and good players (§C.2, Lemma B.8)."""

import math

import pytest

from repro.core.formal import NoiseModel
from repro.errors import ConfigurationError
from repro.lowerbound.feasible import feasible_set, feasible_sizes
from repro.lowerbound.good_players import (
    good_event_threshold,
    good_players,
    large_feasible_players,
    lemma_b8_bound,
    sample_unique_counts,
    unique_input_players,
)
from repro.tasks.input_set import input_set_formal_protocol


class TestFeasibleSet:
    def test_empty_prefix_everything_feasible(self):
        protocol = input_set_formal_protocol(3)
        assert feasible_set(protocol, 0, ()) == tuple(range(1, 7))

    def test_zero_round_rules_out_value(self):
        """π_0 = 0 (round 1 silent) rules out x^i = 1 for everyone."""
        protocol = input_set_formal_protocol(3)
        feasible = feasible_set(protocol, 0, (0,))
        assert 1 not in feasible
        assert feasible == tuple(range(2, 7))

    def test_one_rounds_do_not_constrain(self):
        protocol = input_set_formal_protocol(3)
        assert feasible_set(protocol, 0, (1, 1, 1)) == tuple(range(1, 7))

    def test_all_zero_transcript_leaves_nothing(self):
        protocol = input_set_formal_protocol(2)
        feasible = feasible_set(protocol, 0, (0, 0, 0, 0))
        assert feasible == ()

    def test_sizes_vector(self):
        protocol = input_set_formal_protocol(2)
        sizes = feasible_sizes(protocol, (0, 1, 1, 1))
        assert sizes == [3, 3]  # value 1 ruled out of {1..4}

    def test_party_range_validated(self):
        protocol = input_set_formal_protocol(2)
        with pytest.raises(ConfigurationError):
            feasible_set(protocol, 2, ())

    def test_prefix_length_validated(self):
        protocol = input_set_formal_protocol(2)
        with pytest.raises(ConfigurationError):
            feasible_set(protocol, 0, (0,) * 5)


class TestUniqueInputPlayers:
    def test_all_unique(self):
        assert unique_input_players([1, 2, 3]) == {0, 1, 2}

    def test_duplicates_excluded(self):
        assert unique_input_players([1, 1, 3]) == {2}

    def test_none_unique(self):
        assert unique_input_players([5, 5]) == frozenset()


class TestLargeFeasiblePlayers:
    def test_default_threshold_is_sqrt_n(self):
        protocol = input_set_formal_protocol(4)
        # Empty prefix: feasible sets are the full universe (8 > 2).
        assert large_feasible_players(protocol, ()) == frozenset(range(4))

    def test_custom_threshold(self):
        protocol = input_set_formal_protocol(2)
        # After (0,0,0,0) feasible sets are empty.
        assert (
            large_feasible_players(protocol, (0, 0, 0, 0), threshold=0)
            == frozenset()
        )

    def test_good_players_intersection(self):
        protocol = input_set_formal_protocol(3)
        good = good_players(protocol, [1, 1, 4], (1,) * 6)
        assert good == {2}  # only the unique holder; feasibility is full


class TestGoodEventThreshold:
    def test_quarter(self):
        assert good_event_threshold(8) == 2.0


class TestLemmaB8:
    def test_bound_formula(self):
        assert lemma_b8_bound(4, 8) == pytest.approx(
            1.5 * (1 - math.exp(-0.5))
        )

    def test_monte_carlo_respects_bound(self):
        """Empirical Pr[|I| <= k/3] never exceeds the Lemma B.8 bound
        (for the k < |S| regime where it is meaningful)."""
        k, universe = 6, 24
        counts = sample_unique_counts(k, universe, trials=2000, rng=0)
        empirical = sum(1 for c in counts if c <= k / 3) / len(counts)
        assert empirical <= lemma_b8_bound(k, universe)

    def test_unique_counts_range(self):
        counts = sample_unique_counts(5, 10, trials=100, rng=1)
        assert all(0 <= c <= 5 for c in counts)

    def test_reproducible(self):
        a = sample_unique_counts(5, 10, trials=50, rng=7)
        b = sample_unique_counts(5, 10, trials=50, rng=7)
        assert a == b

    def test_large_universe_most_unique(self):
        counts = sample_unique_counts(5, 10_000, trials=200, rng=2)
        assert sum(counts) / len(counts) > 4.9
