"""Unit tests for the channel substrate."""

import pytest

from repro.channels import (
    CorrectingAdversaryChannel,
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
    SharedFlipReductionChannel,
    SuppressionNoiseChannel,
)
from repro.errors import ChannelError, ConfigurationError, TranscriptError

TRIALS = 4000


def _frequency(channel, bits, trials=TRIALS):
    """Empirical Pr[received = 1] for a fixed beep pattern."""
    return sum(channel.transmit(bits).common for _ in range(trials)) / trials


class TestNoiselessChannel:
    def test_or_delivered(self):
        channel = NoiselessChannel()
        assert channel.transmit((0, 0, 0)).common == 0
        assert channel.transmit((0, 1, 0)).common == 1
        assert channel.transmit((1, 1, 1)).common == 1

    def test_per_party_views_equal(self):
        outcome = NoiselessChannel().transmit((1, 0, 0, 0))
        assert outcome.received == (1, 1, 1, 1)

    def test_never_noisy(self):
        channel = NoiselessChannel()
        for _ in range(100):
            assert not channel.transmit((0, 1)).noisy

    def test_rejects_empty(self):
        with pytest.raises(ChannelError):
            NoiselessChannel().transmit(())

    def test_rejects_non_bits(self):
        with pytest.raises(ChannelError):
            NoiselessChannel().transmit((0, 2))


class TestCorrelatedNoiseChannel:
    def test_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            CorrelatedNoiseChannel(-0.1)
        with pytest.raises(ConfigurationError):
            CorrelatedNoiseChannel(1.0)

    def test_zero_epsilon_is_noiseless(self):
        channel = CorrelatedNoiseChannel(0.0, rng=0)
        for _ in range(200):
            assert channel.transmit((1, 0)).common == 1
            assert channel.transmit((0, 0)).common == 0

    def test_flip_rate_on_silence(self):
        channel = CorrelatedNoiseChannel(0.25, rng=0)
        rate = _frequency(channel, (0, 0, 0))
        assert rate == pytest.approx(0.25, abs=0.03)

    def test_flip_rate_on_beep(self):
        channel = CorrelatedNoiseChannel(0.25, rng=1)
        rate = _frequency(channel, (1, 0, 0))
        assert rate == pytest.approx(0.75, abs=0.03)

    def test_views_always_agree(self):
        channel = CorrelatedNoiseChannel(0.5 - 1e-9, rng=2)
        for _ in range(100):
            outcome = channel.transmit((1, 0, 1))
            assert len(set(outcome.received)) == 1

    def test_reproducible_from_seed(self):
        a = CorrelatedNoiseChannel(0.3, rng=9)
        b = CorrelatedNoiseChannel(0.3, rng=9)
        for _ in range(50):
            assert a.transmit((0,)).common == b.transmit((0,)).common


class TestOneSidedNoiseChannel:
    def test_ones_never_flipped(self):
        channel = OneSidedNoiseChannel(0.49, rng=0)
        for _ in range(300):
            assert channel.transmit((1, 0)).common == 1

    def test_zero_flip_rate(self):
        channel = OneSidedNoiseChannel(1.0 / 3.0, rng=0)
        rate = _frequency(channel, (0, 0))
        assert rate == pytest.approx(1.0 / 3.0, abs=0.03)

    def test_received_zero_is_trustworthy(self):
        channel = OneSidedNoiseChannel(0.4, rng=3)
        for _ in range(300):
            outcome = channel.transmit((0, 1, 0))
            assert outcome.common == 1  # someone beeped -> always 1

    def test_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            OneSidedNoiseChannel(1.5)


class TestSuppressionNoiseChannel:
    def test_zeros_never_flipped(self):
        channel = SuppressionNoiseChannel(0.49, rng=0)
        for _ in range(300):
            assert channel.transmit((0, 0)).common == 0

    def test_one_suppression_rate(self):
        channel = SuppressionNoiseChannel(0.2, rng=1)
        rate = _frequency(channel, (1, 1))
        assert rate == pytest.approx(0.8, abs=0.03)

    def test_epsilon_validation(self):
        with pytest.raises(ConfigurationError):
            SuppressionNoiseChannel(-0.01)


class TestIndependentNoiseChannel:
    def test_marked_uncorrelated(self):
        assert IndependentNoiseChannel(0.1).correlated is False

    def test_views_can_diverge(self):
        channel = IndependentNoiseChannel(0.5 - 1e-9, rng=0)
        diverged = any(
            len(set(channel.transmit((0,) * 8).received)) > 1
            for _ in range(50)
        )
        assert diverged

    def test_common_raises_on_divergence(self):
        channel = IndependentNoiseChannel(0.5 - 1e-9, rng=1)
        with pytest.raises(TranscriptError):
            for _ in range(200):
                channel.transmit((0,) * 8).common

    def test_per_party_flip_rate(self):
        channel = IndependentNoiseChannel(0.2, rng=2)
        trials = 3000
        flips = sum(
            sum(channel.transmit((0, 0, 0)).received) for _ in range(trials)
        )
        assert flips / (3 * trials) == pytest.approx(0.2, abs=0.03)

    def test_zero_epsilon_views_agree(self):
        channel = IndependentNoiseChannel(0.0, rng=3)
        outcome = channel.transmit((1, 0))
        assert outcome.received == (1, 1)


class TestCorrectingAdversaryChannel:
    def test_default_policy_yields_one_sided(self):
        channel = CorrectingAdversaryChannel(0.3, rng=0)
        for _ in range(300):
            assert channel.transmit((1, 0)).common == 1

    def test_zero_flips_still_happen(self):
        channel = CorrectingAdversaryChannel(0.3, rng=1)
        rate = _frequency(channel, (0, 0))
        assert rate == pytest.approx(0.3, abs=0.03)

    def test_policy_must_not_introduce_errors(self):
        with pytest.raises(ConfigurationError):
            CorrectingAdversaryChannel(0.1, policy=lambda orv, rec: 1 - orv)

    def test_policy_output_must_be_bit_choice(self):
        with pytest.raises(ConfigurationError):
            CorrectingAdversaryChannel(
                0.1, policy=lambda orv, rec: orv if orv == rec else 2
            )

    def test_identity_policy_is_plain_two_sided(self):
        channel = CorrectingAdversaryChannel(
            0.25, policy=lambda orv, rec: rec, rng=4
        )
        rate = _frequency(channel, (1, 1))
        assert rate == pytest.approx(0.75, abs=0.03)


class TestSharedFlipReductionChannel:
    def test_emulated_epsilon_defaults(self):
        channel = SharedFlipReductionChannel(rng=0)
        down, up = channel.emulated_epsilon
        assert down == pytest.approx(0.25)
        assert up == pytest.approx(0.25)

    def test_silence_flip_rate_matches_quarter(self):
        channel = SharedFlipReductionChannel(rng=1)
        rate = _frequency(channel, (0, 0, 0), trials=6000)
        assert rate == pytest.approx(0.25, abs=0.03)

    def test_beep_suppression_rate_matches_quarter(self):
        channel = SharedFlipReductionChannel(rng=2)
        rate = _frequency(channel, (1, 0, 0), trials=6000)
        assert rate == pytest.approx(0.75, abs=0.03)

    def test_p_down_validation(self):
        with pytest.raises(ConfigurationError):
            SharedFlipReductionChannel(p_down=1.0)

    def test_views_agree(self):
        channel = SharedFlipReductionChannel(rng=3)
        for _ in range(100):
            assert len(set(channel.transmit((1, 0)).received)) == 1


class TestChannelStats:
    def test_round_and_beep_counting(self):
        channel = NoiselessChannel()
        channel.transmit((1, 1, 0))
        channel.transmit((0, 0, 0))
        assert channel.stats.rounds == 2
        assert channel.stats.beeps_sent == 2
        assert channel.stats.or_ones == 1

    def test_flip_counting_correlated(self):
        channel = CorrelatedNoiseChannel(0.5 - 1e-9, rng=0)
        for _ in range(500):
            channel.transmit((0, 0))
        stats = channel.stats
        assert stats.flips_down == 0
        assert 150 < stats.flips_up < 350  # ~50% of 500
        assert stats.flips == stats.flips_up

    def test_empirical_flip_rate(self):
        channel = CorrelatedNoiseChannel(0.3, rng=1)
        for _ in range(2000):
            channel.transmit((0,))
        assert channel.stats.empirical_flip_rate == pytest.approx(
            0.3, abs=0.04
        )

    def test_reset(self):
        channel = NoiselessChannel()
        channel.transmit((1,))
        channel.reset_stats()
        assert channel.stats.rounds == 0
        assert channel.stats.beeps_sent == 0

    def test_snapshot_is_independent(self):
        channel = NoiselessChannel()
        channel.transmit((1,))
        snapshot = channel.stats.snapshot()
        channel.transmit((1,))
        assert snapshot.rounds == 1
        assert channel.stats.rounds == 2

    def test_empty_stats_rate_is_zero(self):
        channel = NoiselessChannel()
        assert channel.stats.empirical_flip_rate == 0.0
