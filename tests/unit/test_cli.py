"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        # Scenario flags parse as None sentinels (the defaults depend on
        # --topology); _resolve_scenario fills the historical single-hop
        # defaults when no topology is given.
        from repro.cli import _resolve_scenario

        args = build_parser().parse_args(["demo"])
        assert args.task is None
        assert args.simulator is None
        assert args.epsilon == 0.1
        task, _executor, scenario = _resolve_scenario(args)
        assert scenario["task"] == "input-set"
        assert scenario["channel"] == "correlated"
        assert scenario["simulator"] == "chunk"
        assert scenario["topology"] is None
        assert task.n_parties == 8

    def test_demo_topology_defaults(self):
        from repro.cli import _resolve_scenario

        args = build_parser().parse_args(["demo", "--topology", "grid:4x4"])
        task, _executor, scenario = _resolve_scenario(args)
        assert scenario["task"] == "mis"
        assert scenario["channel"] == "independent"
        assert scenario["simulator"] == "local-broadcast"
        assert scenario["topology"] == "grid:cols=4,rows=4"
        assert task.n_parties == 16

    def test_overhead_ns_list(self):
        args = build_parser().parse_args(["overhead", "--ns", "4", "8"])
        assert args.ns == [4, 8]

    def test_unknown_simulator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--simulator", "bogus"])


class TestInfo:
    def test_info_prints_summary(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Noisy Beeps" in out
        assert "Theta(log n)" in out


class TestDemo:
    def test_demo_succeeds_with_simulator(self, capsys):
        code = main(
            [
                "demo",
                "--task",
                "parity",
                "--n",
                "4",
                "--epsilon",
                "0.1",
                "--trials",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "success: 5/5" in out

    def test_demo_raw_over_noise_fails(self, capsys):
        code = main(
            [
                "demo",
                "--task",
                "input-set",
                "--n",
                "6",
                "--simulator",
                "none",
                "--epsilon",
                "0.3",
                "--trials",
                "8",
            ]
        )
        assert code == 1  # unprotected protocol loses most trials

    def test_demo_noiseless_channel(self, capsys):
        code = main(
            [
                "demo",
                "--channel",
                "noiseless",
                "--simulator",
                "none",
                "--n",
                "4",
                "--trials",
                "3",
            ]
        )
        assert code == 0

    @pytest.mark.parametrize(
        "task", ["or", "max-id", "bit-exchange", "size-estimate"]
    )
    def test_demo_all_tasks_run(self, task, capsys):
        code = main(
            [
                "demo",
                "--task",
                task,
                "--n",
                "4",
                "--simulator",
                "repetition",
                "--trials",
                "3",
            ]
        )
        assert code in (0, 1)
        assert "success" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "simulator,channel",
        [
            ("hierarchical", "correlated"),
            ("rewind", "suppression"),
        ],
    )
    def test_demo_other_simulators(self, simulator, channel, capsys):
        code = main(
            [
                "demo",
                "--task",
                "parity",
                "--n",
                "4",
                "--simulator",
                simulator,
                "--channel",
                channel,
                "--trials",
                "3",
            ]
        )
        assert code == 0
        assert "success" in capsys.readouterr().out

    def test_demo_on_grid_topology(self, capsys):
        code = main(
            [
                "demo",
                "--topology",
                "grid:4x4",
                "--epsilon",
                "0.05",
                "--trials",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "topology=grid:cols=4,rows=4" in out
        assert "simulator=local-broadcast" in out

    def test_demo_burst_channel(self, capsys):
        code = main(
            [
                "demo",
                "--channel",
                "burst",
                "--task",
                "parity",
                "--n",
                "4",
                "--trials",
                "3",
            ]
        )
        assert code == 0


class TestOverhead:
    def test_overhead_prints_fit(self, capsys):
        code = main(
            [
                "overhead",
                "--ns",
                "4",
                "8",
                "--trials",
                "2",
                "--simulator",
                "repetition",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fit: overhead" in out
        assert "log2(n)" in out

    def test_single_n_skips_fit(self, capsys):
        code = main(
            [
                "overhead",
                "--ns",
                "4",
                "--trials",
                "2",
                "--simulator",
                "repetition",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fit:" not in out


class TestExperiments:
    def test_lists_all_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for identifier in [f"E{i}" for i in range(1, 14)]:
            assert identifier in out
        assert "--benchmark-only" in out


class TestSweepService:
    """The ``repro sweep`` verbs, end to end through ``main``."""

    GRID = [
        "--task",
        "parity",
        "--ns",
        "3",
        "4",
        "--trials",
        "2",
        "--seed",
        "5",
    ]

    def run_verb(self, verb, tmp_path, *extra):
        return main(
            ["sweep", verb, *self.GRID, "--cache-dir", str(tmp_path / "cache")]
            + list(extra)
        )

    def json_out(self, capsys):
        import json

        return json.loads(capsys.readouterr().out.strip().splitlines()[-1])

    def test_run_then_warm_rerun_all_hits(self, tmp_path, capsys):
        assert self.run_verb("run", tmp_path, "--json") == 0
        cold = self.json_out(capsys)
        assert cold["computed"] == 2 and cold["hits"] == 0

        assert self.run_verb("run", tmp_path, "--json") == 0
        warm = self.json_out(capsys)
        # The acceptance criterion: zero recomputed points on re-run.
        assert warm["computed"] == 0
        assert warm["hits"] == warm["points"] == 2

    def test_resume_is_run_alias(self, tmp_path, capsys):
        assert self.run_verb("run", tmp_path, "--json") == 0
        self.json_out(capsys)
        assert self.run_verb("resume", tmp_path, "--json") == 0
        assert self.json_out(capsys)["computed"] == 0

    def test_status_incomplete_then_complete(self, tmp_path, capsys):
        assert self.run_verb("run", tmp_path, "--shard", "0/2", "--json") == 0
        self.json_out(capsys)
        assert self.run_verb("status", tmp_path, "--json") == 1
        partial = self.json_out(capsys)
        assert partial["done"] == 1 and partial["missing"] == [1]

        assert self.run_verb("run", tmp_path, "--shard", "1/2", "--json") == 0
        self.json_out(capsys)
        assert self.run_verb("status", tmp_path, "--json") == 0
        assert self.json_out(capsys)["done"] == 2

    def test_merge_requires_completeness(self, tmp_path, capsys):
        out_file = str(tmp_path / "merged.json")
        assert self.run_verb("run", tmp_path, "--shard", "0/2", "--json") == 0
        self.json_out(capsys)
        assert self.run_verb("merge", tmp_path, "-o", out_file) == 1
        assert "missing" in capsys.readouterr().err

        assert self.run_verb("run", tmp_path, "--shard", "1/2", "--json") == 0
        self.json_out(capsys)
        assert self.run_verb("merge", tmp_path, "-o", out_file, "--json") == 0
        assert self.json_out(capsys)["points"] == 2

        import json

        with open(out_file, encoding="utf-8") as handle:
            merged = json.load(handle)
        assert len(merged["points"]) == 2
        assert merged["grid"]["task"] == "parity"

    def test_events_stream_and_status_summary(self, tmp_path, capsys):
        events = str(tmp_path / "events.jsonl")
        assert self.run_verb("run", tmp_path, "--events", events) == 0
        capsys.readouterr()
        code = self.run_verb(
            "status", tmp_path, "--events", events, "--json"
        )
        assert code == 0
        summary = self.json_out(capsys)
        assert summary["events"]["cache_put"] == 2
        assert summary["events"]["trial"] == 4  # 2 points x 2 trials

    def test_gc_drops_unreferenced_objects(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert self.run_verb("run", tmp_path, "--json") == 0
        self.json_out(capsys)
        # Remove the manifest: the objects become unreferenced.
        import pathlib

        for manifest in pathlib.Path(cache, "runs").glob("*.json"):
            manifest.unlink()
        assert main(["sweep", "gc", "--cache-dir", cache, "--json"]) == 0
        stats = self.json_out(capsys)
        assert stats["removed"] == 2

    def test_gc_keeps_referenced_objects(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert self.run_verb("run", tmp_path, "--json") == 0
        self.json_out(capsys)
        assert main(["sweep", "gc", "--cache-dir", cache, "--json"]) == 0
        stats = self.json_out(capsys)
        assert stats["removed"] == 0 and stats["kept"] == 2
        # ... and the cached points still serve a warm run.
        assert self.run_verb("run", tmp_path, "--json") == 0
        assert self.json_out(capsys)["computed"] == 0

    def test_bad_shard_spec_rejected(self, tmp_path):
        import pytest
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            self.run_verb("run", tmp_path, "--shard", "2/2")
        with pytest.raises(ConfigurationError):
            self.run_verb("run", tmp_path, "--shard", "nope")

    def test_network_sweep_caches_and_resumes(self, tmp_path, capsys):
        # A topology sweep goes through the same content-addressed cache:
        # cold run computes, warm re-run is all hits.
        grid = [
            "--topology",
            "grid:4x4",
            "--trials",
            "2",
            "--epsilon",
            "0.05",
            "--seed",
            "5",
        ]
        cache = ["--cache-dir", str(tmp_path / "cache"), "--json"]
        assert main(["sweep", "run", *grid, *cache]) == 0
        cold = self.json_out(capsys)
        assert cold["computed"] == 1 and cold["hits"] == 0
        assert main(["sweep", "resume", *grid, *cache]) == 0
        warm = self.json_out(capsys)
        assert warm["computed"] == 0 and warm["hits"] == 1

    def test_output_writes_points(self, tmp_path, capsys):
        out_file = str(tmp_path / "points.json")
        assert self.run_verb("run", tmp_path, "-o", out_file) == 0
        import json

        with open(out_file, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert [p["params"]["n"] for p in payload["points"]] == [3, 4]
