"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.task == "input-set"
        assert args.simulator == "chunk"
        assert args.epsilon == 0.1

    def test_overhead_ns_list(self):
        args = build_parser().parse_args(["overhead", "--ns", "4", "8"])
        assert args.ns == [4, 8]

    def test_unknown_simulator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--simulator", "bogus"])


class TestInfo:
    def test_info_prints_summary(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Noisy Beeps" in out
        assert "Theta(log n)" in out


class TestDemo:
    def test_demo_succeeds_with_simulator(self, capsys):
        code = main(
            [
                "demo",
                "--task",
                "parity",
                "--n",
                "4",
                "--epsilon",
                "0.1",
                "--trials",
                "5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "success: 5/5" in out

    def test_demo_raw_over_noise_fails(self, capsys):
        code = main(
            [
                "demo",
                "--task",
                "input-set",
                "--n",
                "6",
                "--simulator",
                "none",
                "--epsilon",
                "0.3",
                "--trials",
                "8",
            ]
        )
        assert code == 1  # unprotected protocol loses most trials

    def test_demo_noiseless_channel(self, capsys):
        code = main(
            [
                "demo",
                "--channel",
                "noiseless",
                "--simulator",
                "none",
                "--n",
                "4",
                "--trials",
                "3",
            ]
        )
        assert code == 0

    @pytest.mark.parametrize(
        "task", ["or", "max-id", "bit-exchange", "size-estimate"]
    )
    def test_demo_all_tasks_run(self, task, capsys):
        code = main(
            [
                "demo",
                "--task",
                task,
                "--n",
                "4",
                "--simulator",
                "repetition",
                "--trials",
                "3",
            ]
        )
        assert code in (0, 1)
        assert "success" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "simulator,channel",
        [
            ("hierarchical", "correlated"),
            ("rewind", "suppression"),
        ],
    )
    def test_demo_other_simulators(self, simulator, channel, capsys):
        code = main(
            [
                "demo",
                "--task",
                "parity",
                "--n",
                "4",
                "--simulator",
                simulator,
                "--channel",
                channel,
                "--trials",
                "3",
            ]
        )
        assert code == 0
        assert "success" in capsys.readouterr().out

    def test_demo_burst_channel(self, capsys):
        code = main(
            [
                "demo",
                "--channel",
                "burst",
                "--task",
                "parity",
                "--n",
                "4",
                "--trials",
                "3",
            ]
        )
        assert code == 0


class TestOverhead:
    def test_overhead_prints_fit(self, capsys):
        code = main(
            [
                "overhead",
                "--ns",
                "4",
                "8",
                "--trials",
                "2",
                "--simulator",
                "repetition",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fit: overhead" in out
        assert "log2(n)" in out

    def test_single_n_skips_fit(self, capsys):
        code = main(
            [
                "overhead",
                "--ns",
                "4",
                "--trials",
                "2",
                "--simulator",
                "repetition",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fit:" not in out


class TestExperiments:
    def test_lists_all_experiments(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for identifier in [f"E{i}" for i in range(1, 14)]:
            assert identifier in out
        assert "--benchmark-only" in out
