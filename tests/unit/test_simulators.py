"""Unit tests for the simulation schemes."""

import pytest

from repro.channels import (
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
    SuppressionNoiseChannel,
)
from repro.core import FunctionalProtocol, run_protocol
from repro.errors import ConfigurationError
from repro.simulation import (
    ChunkCommitSimulator,
    RepetitionSimulator,
    RewindSimulator,
    SimulationParameters,
)
from repro.simulation.base import infer_noise_model
from repro.simulation.repetition_sim import RepetitionWrappedProtocol
from repro.tasks import InputSetTask, MaxIdTask, ParityTask


def _run(task, simulator, channel, inputs):
    return simulator.simulate(task.noiseless_protocol(), inputs, channel)


class TestInferNoiseModel:
    def test_noiseless(self):
        model = infer_noise_model(NoiselessChannel())
        assert model.up == model.down == 0.0

    def test_correlated(self):
        model = infer_noise_model(CorrelatedNoiseChannel(0.2))
        assert model.up == model.down == 0.2

    def test_one_sided(self):
        model = infer_noise_model(OneSidedNoiseChannel(0.3))
        assert (model.up, model.down) == (0.3, 0.0)

    def test_suppression(self):
        model = infer_noise_model(SuppressionNoiseChannel(0.3))
        assert (model.up, model.down) == (0.0, 0.3)

    def test_independent(self):
        model = infer_noise_model(IndependentNoiseChannel(0.15))
        assert model.up == model.down == 0.15

    def test_unknown_channel_rejected(self):
        class _Odd(NoiselessChannel):
            pass

        class _Unknown:
            correlated = True

        with pytest.raises(ConfigurationError):
            infer_noise_model(_Unknown())


class TestRepetitionWrappedProtocol:
    def test_length_multiplies(self):
        task = ParityTask(4)
        wrapped = RepetitionWrappedProtocol(task.noiseless_protocol(), 5)
        assert wrapped.length() == 20

    def test_noiseless_equivalence(self, rng):
        """Over a noiseless channel the wrapper changes nothing."""
        task = InputSetTask(4)
        inputs = task.sample_inputs(rng)
        wrapped = RepetitionWrappedProtocol(task.noiseless_protocol(), 3)
        result = run_protocol(wrapped, inputs, NoiselessChannel())
        assert task.is_correct(inputs, result.outputs)

    def test_zero_round_inner(self):
        inner = FunctionalProtocol(
            n_parties=2,
            length=0,
            broadcast=lambda i, x, p: 0,
            output=lambda i, x, r: "empty",
        )
        wrapped = RepetitionWrappedProtocol(inner, 4)
        result = run_protocol(wrapped, [None, None], NoiselessChannel())
        assert result.outputs == ["empty", "empty"]
        assert result.rounds == 0


class TestRepetitionSimulator:
    def test_correct_under_mild_noise(self, rng):
        task = InputSetTask(5)
        simulator = RepetitionSimulator()
        wins = 0
        for trial in range(20):
            inputs = task.sample_inputs(rng)
            channel = CorrelatedNoiseChannel(0.1, rng=trial)
            result = _run(task, simulator, channel, inputs)
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 19

    def test_report_metadata(self, rng):
        task = ParityTask(4)
        inputs = task.sample_inputs(rng)
        result = RepetitionSimulator().simulate(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.1, rng=0),
        )
        report = result.metadata["report"]
        assert report.scheme == "RepetitionSimulator"
        assert report.inner_length == 4
        assert report.simulated_rounds == result.rounds
        assert report.overhead == result.rounds / 4
        assert report.extra["repetitions"] % 2 == 1

    def test_explicit_repetitions_honored(self, rng):
        task = ParityTask(3)
        inputs = task.sample_inputs(rng)
        params = SimulationParameters(repetitions=7)
        result = RepetitionSimulator(params).simulate(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.1, rng=0),
        )
        assert result.rounds == 3 * 7

    def test_works_over_independent_noise(self, rng):
        task = InputSetTask(4)
        simulator = RepetitionSimulator()
        wins = 0
        for trial in range(20):
            inputs = task.sample_inputs(rng)
            channel = IndependentNoiseChannel(0.1, rng=trial)
            result = _run(task, simulator, channel, inputs)
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 18

    def test_adaptive_protocol(self, rng):
        task = MaxIdTask(4, id_bits=5)
        simulator = RepetitionSimulator()
        wins = 0
        for trial in range(20):
            inputs = task.sample_inputs(rng)
            channel = CorrelatedNoiseChannel(0.1, rng=trial)
            result = _run(task, simulator, channel, inputs)
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 19


class TestChunkCommitSimulator:
    def test_correct_under_mild_noise(self, rng):
        task = InputSetTask(5)
        simulator = ChunkCommitSimulator()
        wins = 0
        for trial in range(15):
            inputs = task.sample_inputs(rng)
            channel = CorrelatedNoiseChannel(0.1, rng=trial)
            result = _run(task, simulator, channel, inputs)
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 14

    def test_adaptive_protocol_replays_correctly(self, rng):
        task = MaxIdTask(4, id_bits=6)
        simulator = ChunkCommitSimulator()
        wins = 0
        for trial in range(15):
            inputs = task.sample_inputs(rng)
            channel = CorrelatedNoiseChannel(0.1, rng=trial)
            result = _run(task, simulator, channel, inputs)
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 14

    def test_report_counts_commits(self, rng):
        task = InputSetTask(4)
        inputs = task.sample_inputs(rng)
        result = ChunkCommitSimulator().simulate(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.05, rng=0),
        )
        report = result.metadata["report"]
        # 2n = 8 rounds in chunks of n = 4 -> 2 committed chunks minimum.
        assert report.chunk_commits >= 2
        assert report.chunk_attempts >= report.chunk_commits
        assert report.completed

    def test_rejects_independent_noise(self, rng):
        task = InputSetTask(3)
        inputs = task.sample_inputs(rng)
        with pytest.raises(ConfigurationError):
            ChunkCommitSimulator().simulate(
                task.noiseless_protocol(),
                inputs,
                IndependentNoiseChannel(0.1, rng=0),
            )

    def test_noiseless_channel_single_attempt_per_chunk(self, rng):
        task = InputSetTask(4)
        inputs = task.sample_inputs(rng)
        result = ChunkCommitSimulator().simulate(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        report = result.metadata["report"]
        assert report.chunk_attempts == report.chunk_commits == 2
        assert task.is_correct(inputs, result.outputs)

    def test_custom_chunk_length(self, rng):
        task = InputSetTask(4)
        inputs = task.sample_inputs(rng)
        params = SimulationParameters(chunk_length=2)
        result = ChunkCommitSimulator(params).simulate(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        report = result.metadata["report"]
        assert report.chunk_commits == 4  # 8 rounds / 2 per chunk

    def test_budget_exhaustion_reported(self, rng):
        """With an absurd noise level and a tiny budget the simulator
        fails gracefully and reports incompleteness."""
        task = InputSetTask(3)
        inputs = task.sample_inputs(rng)
        params = SimulationParameters(
            repetitions=1,
            verification_repetitions=1,
            attempt_slack=1.0,
            attempt_extra=0,
        )
        channel = CorrelatedNoiseChannel(0.45, rng=3)
        result = ChunkCommitSimulator(params).simulate(
            task.noiseless_protocol(), inputs, channel
        )
        report = result.metadata["report"]
        assert report.chunk_attempts == 2  # ceil(1.0 * 2) + 0
        # Either it got lucky and completed, or it reports failure.
        assert report.completed in (True, False)

    def test_works_on_one_sided_noise(self, rng):
        task = InputSetTask(4)
        simulator = ChunkCommitSimulator()
        wins = 0
        for trial in range(15):
            inputs = task.sample_inputs(rng)
            channel = OneSidedNoiseChannel(0.15, rng=trial)
            result = _run(task, simulator, channel, inputs)
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 14


class TestRewindSimulator:
    def test_correct_under_suppression_noise(self, rng):
        task = InputSetTask(5)
        simulator = RewindSimulator()
        wins = 0
        for trial in range(20):
            inputs = task.sample_inputs(rng)
            channel = SuppressionNoiseChannel(0.1, rng=trial)
            result = _run(task, simulator, channel, inputs)
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 19

    def test_constant_overhead(self, rng):
        """Round count is exactly 2 * iterations, a fixed multiple of T."""
        task = InputSetTask(6)
        inputs = task.sample_inputs(rng)
        params = SimulationParameters(
            rewind_budget_factor=3.0, rewind_budget_extra=10
        )
        result = RewindSimulator(params).simulate(
            task.noiseless_protocol(),
            inputs,
            SuppressionNoiseChannel(0.1, rng=0),
        )
        assert result.rounds == 2 * (3 * 12 + 10)

    def test_adaptive_protocol(self, rng):
        task = MaxIdTask(4, id_bits=6)
        simulator = RewindSimulator()
        wins = 0
        for trial in range(20):
            inputs = task.sample_inputs(rng)
            channel = SuppressionNoiseChannel(0.1, rng=trial)
            result = _run(task, simulator, channel, inputs)
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 19

    def test_rewinds_happen_under_noise(self, rng):
        task = InputSetTask(6)
        rewind_totals = 0
        for trial in range(10):
            inputs = task.sample_inputs(rng)
            channel = SuppressionNoiseChannel(0.2, rng=trial)
            result = RewindSimulator().simulate(
                task.noiseless_protocol(), inputs, channel
            )
            rewind_totals += result.metadata["report"].rewinds
        assert rewind_totals > 0

    def test_no_rewinds_without_noise(self, rng):
        task = InputSetTask(4)
        inputs = task.sample_inputs(rng)
        result = RewindSimulator().simulate(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        assert result.metadata["report"].rewinds == 0
        assert result.metadata["report"].completed

    def test_unsound_under_upward_noise(self, rng):
        """The asymmetry (§1.1): the same scheme over 0->1 noise degrades
        markedly — phantom 1s are unverifiable and alarms are fabricated."""
        task = InputSetTask(6)
        suppression_wins = 0
        upward_wins = 0
        trials = 25
        for trial in range(trials):
            inputs = task.sample_inputs(rng)
            down = SuppressionNoiseChannel(0.25, rng=trial)
            up = OneSidedNoiseChannel(0.25, rng=trial)
            simulator = RewindSimulator()
            result_down = _run(task, simulator, down, inputs)
            result_up = _run(task, simulator, up, inputs)
            suppression_wins += task.is_correct(
                inputs, result_down.outputs
            )
            upward_wins += task.is_correct(inputs, result_up.outputs)
        assert suppression_wins > upward_wins + trials * 0.3

    def test_rejects_independent_noise(self, rng):
        task = InputSetTask(3)
        inputs = task.sample_inputs(rng)
        with pytest.raises(ConfigurationError):
            RewindSimulator().simulate(
                task.noiseless_protocol(),
                inputs,
                IndependentNoiseChannel(0.1, rng=0),
            )


class TestSimulatorValidation:
    def test_unknown_length_rejected(self, rng):
        class _NoLength(FunctionalProtocol):
            def length(self):
                return None

        protocol = _NoLength(
            n_parties=2,
            length=2,
            broadcast=lambda i, x, p: 0,
            output=lambda i, x, r: None,
        )
        with pytest.raises(ConfigurationError):
            RepetitionSimulator().simulate(
                protocol, [None, None], NoiselessChannel()
            )
