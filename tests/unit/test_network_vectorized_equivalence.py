"""Cross-backend equivalence for the batched network kernel.

The network route of :mod:`repro.vectorized.network` carries the same
contract as the single-hop collapses: *bitwise* agreement with the
scalar reference, per trial — same ``TrialRecord`` for the same
``(seed, index)`` regardless of backend.  These tests drive both
runners over the graph protocol grid:

* three topology families (grid, ring, geometric) crossed with the
  three batched protocol drivers (neighbor-OR, broadcast, MIS), the
  three single-noise channel configurations (noiseless, per-node
  independent, per-edge erasure), raw and under the local-broadcast
  repetition wrapper — every combination must run batched (no silent
  fallback making the test vacuous) and match the scalar records;
* batches the kernel does *not* cover — per-node epsilon vectors,
  combined node+edge noise, tasks and simulators outside the driver
  registry — must take the scalar fallback, with a reason, and still
  produce identical records;
* sampled vectorized trials replay bitwise on the scalar engine from
  their ``(seed, index)`` alone, observer events match, and the
  composed vectorized-process backend stripes the same batch to the
  same records.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.network import (
    BroadcastTask,
    LocalBroadcastSimulator,
    MISTask,
    NeighborORTask,
    NetworkBeepingChannel,
    NetworkSizeEstimateTask,
    TopologySpec,
)
from repro.parallel import (
    ChannelSpec,
    ProtocolExecutor,
    SerialRunner,
    SimulationExecutor,
    SimulatorSpec,
    run_trial,
)
from repro.simulation import RepetitionSimulator
from repro.vectorized import VectorizedRunner

TOPOLOGY_SPECS = {
    "grid": TopologySpec.of("grid", rows=3, cols=3),
    "ring": TopologySpec.of("ring", n=7),
    "geometric": TopologySpec.of("geometric", n=8, radius=0.7, seed=3),
}

#: The three single-noise channel configurations the kernel batches.
NOISE_KINDS = ("noiseless", "node", "edge")

TASKS = ("neighbor-or", "broadcast", "mis")

TRIALS = 5


def _channel_spec(topology_spec, noise):
    if noise == "node":
        return ChannelSpec.of(
            NetworkBeepingChannel, 0.05, topology=topology_spec
        )
    if noise == "edge":
        return ChannelSpec.of(
            NetworkBeepingChannel, topology=topology_spec, edge_epsilon=0.1
        )
    return ChannelSpec.of(
        NetworkBeepingChannel, topology=topology_spec, seed_kwarg=None
    )


def _task(name, topology_spec):
    topology = topology_spec.build()
    if name == "neighbor-or":
        return NeighborORTask(topology)
    if name == "broadcast":
        return BroadcastTask(topology)
    return MISTask(topology, cycles=2)


def _executor(task, channel_spec, wrapped):
    if wrapped:
        return SimulationExecutor(
            task=task,
            channel=channel_spec,
            simulator=SimulatorSpec.of(LocalBroadcastSimulator),
        )
    return ProtocolExecutor(task, channel_spec)


def _run(runner, task, executor, seed):
    """Records, or the raised exception (compared across backends)."""
    try:
        return runner.run_trials(task, executor, TRIALS, seed=seed).records
    except Exception as exc:  # noqa: BLE001 - parity is the assertion
        return (type(exc), str(exc))


class TestNetworkCrossBackendEquivalence:
    @pytest.mark.parametrize("family", sorted(TOPOLOGY_SPECS))
    @pytest.mark.parametrize("task_name", TASKS)
    @pytest.mark.parametrize("noise", NOISE_KINDS)
    @pytest.mark.parametrize("wrapped", [False, True], ids=["raw", "lb"])
    def test_records_bitwise_equal(self, family, task_name, noise, wrapped):
        topology_spec = TOPOLOGY_SPECS[family]
        task = _task(task_name, topology_spec)
        executor = _executor(
            task, _channel_spec(topology_spec, noise), wrapped
        )
        seed = 20260807
        serial = _run(SerialRunner(), task, executor, seed)
        vectorized_runner = VectorizedRunner()
        vectorized = _run(vectorized_runner, task, executor, seed)
        assert vectorized == serial
        # Every combination above has a batched form; a fallback here
        # would make the equivalence vacuous.
        assert vectorized_runner.last_fallback_reason is None

    def test_sampled_trials_replay_on_scalar_engine(self):
        """Any trial a batched network sweep records can be reproduced
        by the scalar ``run_trial`` from its ``(seed, index)`` alone."""
        topology_spec = TOPOLOGY_SPECS["grid"]
        for noise in NOISE_KINDS:
            task = MISTask(topology_spec.build(), cycles=2)
            executor = ProtocolExecutor(
                task, _channel_spec(topology_spec, noise)
            )
            runner = VectorizedRunner()
            batch = runner.run_trials(task, executor, 6, seed=99)
            assert runner.last_fallback_reason is None
            for index in (0, 2, 5):  # sampled subset
                assert batch.records[index] == run_trial(
                    task, executor, 99, index
                ), (noise, index)

    def test_observer_events_match(self):
        """Tracing emits the same trial events from either backend."""
        from repro.observe import MetricsCollector, Observer

        topology_spec = TOPOLOGY_SPECS["ring"]
        task = BroadcastTask(topology_spec.build())
        executor = ProtocolExecutor(
            task, _channel_spec(topology_spec, "node")
        )

        def trial_events(runner):
            collector = MetricsCollector()
            with Observer([collector]) as observer:
                runner.run_trials(task, executor, 3, seed=5, observe=observer)
            return [
                {
                    key: value
                    for key, value in event.items()
                    if key not in ("ts", "elapsed_s")
                }
                for event in collector.events
                if event["event"] == "trial"
            ]

        assert trial_events(VectorizedRunner()) == trial_events(
            SerialRunner()
        )

    def test_vectorized_process_stripes_match(self):
        """The composed backend stripes a network batch across worker
        processes to the same records as one in-process batch."""
        from repro.vectorized import VectorizedProcessRunner

        topology_spec = TOPOLOGY_SPECS["grid"]
        task = NeighborORTask(topology_spec.build())
        executor = ProtocolExecutor(
            task, _channel_spec(topology_spec, "node")
        )
        serial = SerialRunner().run_trials(
            task, executor, 8, seed=31
        ).records
        runner = VectorizedProcessRunner(workers=2)
        try:
            striped = runner.run_trials(task, executor, 8, seed=31)
        finally:
            runner.close()
        assert striped.records == serial


class TestNetworkFallbacks:
    """Batches outside the kernel's coverage fall back — with a reason —
    and still match the scalar records (non-vacuity of the route)."""

    def _assert_fallback(self, task, executor, expect=None):
        seed = 404
        serial = _run(SerialRunner(), task, executor, seed)
        runner = VectorizedRunner()
        vectorized = _run(runner, task, executor, seed)
        assert vectorized == serial
        assert runner.last_fallback_reason is not None
        if expect is not None:
            assert expect in runner.last_fallback_reason

    def test_node_epsilon_vectors_fall_back(self):
        topology_spec = TOPOLOGY_SPECS["ring"]
        task = NeighborORTask(topology_spec.build())
        executor = ProtocolExecutor(
            task,
            ChannelSpec.of(
                NetworkBeepingChannel,
                topology=topology_spec,
                node_epsilons=[0.02] * 7,
            ),
        )
        self._assert_fallback(task, executor)

    def test_combined_node_and_edge_noise_falls_back(self):
        topology_spec = TOPOLOGY_SPECS["grid"]
        task = NeighborORTask(topology_spec.build())
        executor = ProtocolExecutor(
            task,
            ChannelSpec.of(
                NetworkBeepingChannel,
                0.05,
                topology=topology_spec,
                edge_epsilon=0.1,
            ),
        )
        self._assert_fallback(task, executor)

    def test_unregistered_protocol_falls_back(self):
        topology_spec = TOPOLOGY_SPECS["grid"]
        task = NetworkSizeEstimateTask(topology_spec.build())
        executor = ProtocolExecutor(
            task, _channel_spec(topology_spec, "node")
        )
        self._assert_fallback(task, executor)

    def test_non_local_broadcast_simulator_falls_back(self):
        topology_spec = TOPOLOGY_SPECS["grid"]
        task = NeighborORTask(topology_spec.build())
        executor = SimulationExecutor(
            task=task,
            channel=_channel_spec(topology_spec, "node"),
            simulator=SimulatorSpec.of(RepetitionSimulator),
        )
        self._assert_fallback(task, executor)
