"""Unit tests for the budgeted adversary channel."""

import pytest

from repro.channels import BudgetedAdversaryChannel
from repro.channels.adversarial import (
    flip_ones_strategy,
    flip_zeros_strategy,
    periodic_strategy,
)
from repro.errors import ConfigurationError


class TestStrategies:
    def test_flip_zeros_targets_silence(self):
        assert flip_zeros_strategy(0, 0, 5)
        assert not flip_zeros_strategy(0, 1, 5)

    def test_flip_ones_targets_beeps(self):
        assert flip_ones_strategy(0, 1, 5)
        assert not flip_ones_strategy(0, 0, 5)

    def test_periodic(self):
        strategy = periodic_strategy(3)
        assert strategy(0, 0, 5)
        assert not strategy(1, 0, 5)
        assert not strategy(2, 1, 5)
        assert strategy(3, 1, 5)

    def test_periodic_validation(self):
        with pytest.raises(ConfigurationError):
            periodic_strategy(0)


class TestBudgetedAdversaryChannel:
    def test_budget_enforced(self):
        channel = BudgetedAdversaryChannel(budget=2)
        flips = sum(
            channel.transmit((0, 0)).common for _ in range(10)
        )
        assert flips == 2
        assert channel.flips_remaining == 0

    def test_zero_budget_is_noiseless(self):
        channel = BudgetedAdversaryChannel(budget=0)
        for _ in range(20):
            assert channel.transmit((1, 0)).common == 1
            assert channel.transmit((0, 0)).common == 0

    def test_flip_ones_strategy_suppresses(self):
        channel = BudgetedAdversaryChannel(
            budget=1, strategy=flip_ones_strategy
        )
        assert channel.transmit((0, 0)).common == 0  # not its target
        assert channel.transmit((1, 0)).common == 0  # spent here
        assert channel.transmit((1, 0)).common == 1  # budget gone

    def test_periodic_spends_on_schedule(self):
        channel = BudgetedAdversaryChannel(
            budget=10, strategy=periodic_strategy(2)
        )
        received = [channel.transmit((0,)).common for _ in range(6)]
        assert received == [1, 0, 1, 0, 1, 0]

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            BudgetedAdversaryChannel(budget=-1)

    def test_views_correlated(self):
        channel = BudgetedAdversaryChannel(budget=3)
        for _ in range(10):
            outcome = channel.transmit((0, 1, 0))
            assert len(set(outcome.received)) == 1


class TestAdversaryVsProtocols:
    def test_zero_flipper_destroys_naive_input_set(self):
        """A budget of 1, spent on a silent round, corrupts L(x) for the
        unprotected protocol — deterministically."""
        from repro.core import run_protocol
        from repro.tasks import InputSetTask

        task = InputSetTask(3)
        inputs = [1, 2, 3]
        channel = BudgetedAdversaryChannel(
            budget=1, strategy=flip_zeros_strategy
        )
        result = run_protocol(
            task.noiseless_protocol(), inputs, channel
        )
        assert not task.is_correct(inputs, result.outputs)

    def test_chunk_simulator_survives_small_budgets(self):
        """A sub-logarithmic adversary budget cannot beat the repetition
        margins: the chunk scheme still wins."""
        from repro.core.formal import NoiseModel
        from repro.simulation import ChunkCommitSimulator
        from repro.tasks import InputSetTask

        task = InputSetTask(4)
        inputs = [1, 3, 5, 7]
        simulator = ChunkCommitSimulator(
            noise_model=NoiseModel.two_sided(0.2)
        )
        channel = BudgetedAdversaryChannel(
            budget=3, strategy=flip_zeros_strategy
        )
        result = simulator.simulate(
            task.noiseless_protocol(), inputs, channel
        )
        assert task.is_correct(inputs, result.outputs)
