"""Unit tests for protocol combinators and energy accounting."""

import pytest

from repro.channels import NoiselessChannel, ScriptedChannel
from repro.core import (
    FunctionalProtocol,
    SequentialProtocol,
    TruncatedProtocol,
    announce_input,
    run_protocol,
)
from repro.errors import ConfigurationError
from repro.tasks import InputSetTask, ParityTask
from repro.util.bits import bits_to_int


def _constant_protocol(n, length, output_value):
    return FunctionalProtocol(
        n_parties=n,
        length=length,
        broadcast=lambda i, x, p: 0,
        output=lambda i, x, r: output_value,
    )


class TestAnnounceInput:
    def test_prefix_carries_the_input(self):
        task = InputSetTask(3)
        protocol = announce_input(
            task.noiseless_protocol(), announcer=1, width=4
        )
        inputs = [2, 5, 6]
        result = run_protocol(protocol, inputs, NoiselessChannel())
        prefix, inner_output = result.outputs[0]
        assert bits_to_int(prefix) == 5
        assert inner_output == frozenset(inputs)

    def test_length_grows_by_width(self):
        task = ParityTask(2)
        protocol = announce_input(
            task.noiseless_protocol(), announcer=0, width=3
        )
        assert protocol.length() == 2 + 3

    def test_only_announcer_beeps_in_prefix(self):
        task = ParityTask(3)
        protocol = announce_input(
            task.noiseless_protocol(), announcer=2, width=2
        )
        result = run_protocol(protocol, [1, 1, 1], NoiselessChannel())
        for round_index in range(2):
            sent = result.transcript[round_index].sent
            assert sent[0] == 0 and sent[1] == 0

    def test_transcript_determines_announcer_output(self):
        """The WLOG property: after announcing, the announcer's input is
        readable from the common transcript."""
        task = InputSetTask(2)
        protocol = announce_input(
            task.noiseless_protocol(), announcer=0, width=3
        )
        inputs = [3, 1]
        result = run_protocol(protocol, inputs, NoiselessChannel())
        view = result.transcript.common_view()
        assert bits_to_int(view[:3]) == 3

    def test_validation(self):
        task = ParityTask(2)
        with pytest.raises(ConfigurationError):
            announce_input(task.noiseless_protocol(), width=None)
        with pytest.raises(ConfigurationError):
            announce_input(task.noiseless_protocol(), announcer=5, width=2)
        with pytest.raises(ConfigurationError):
            announce_input(task.noiseless_protocol(), width=0)


class TestSequentialProtocol:
    def test_outputs_pair_up(self):
        first = _constant_protocol(2, 1, "a")
        second = _constant_protocol(2, 2, "b")
        combined = SequentialProtocol(first, second)
        result = run_protocol(combined, [None, None], NoiselessChannel())
        assert result.outputs == [("a", "b"), ("a", "b")]
        assert result.rounds == 3

    def test_length_adds(self):
        combined = SequentialProtocol(
            _constant_protocol(2, 3, None), _constant_protocol(2, 4, None)
        )
        assert combined.length() == 7

    def test_party_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            SequentialProtocol(
                _constant_protocol(2, 1, None),
                _constant_protocol(3, 1, None),
            )

    def test_real_tasks_compose(self):
        task = ParityTask(3)
        combined = SequentialProtocol(
            task.noiseless_protocol(), task.noiseless_protocol()
        )
        result = run_protocol(combined, [1, 0, 1], NoiselessChannel())
        first, second = result.outputs[0]
        assert first == second == 0


class TestTruncatedProtocol:
    def test_within_budget_is_transparent(self):
        task = ParityTask(3)
        truncated = TruncatedProtocol(task.noiseless_protocol(), 10)
        result = run_protocol(truncated, [1, 1, 0], NoiselessChannel())
        assert result.outputs == [0, 0, 0]
        assert result.rounds == 3

    def test_truncation_returns_prefix(self):
        task = ParityTask(4)
        truncated = TruncatedProtocol(task.noiseless_protocol(), 2)
        result = run_protocol(truncated, [1, 0, 1, 1], NoiselessChannel())
        assert result.rounds == 2
        assert result.outputs[0] == (1, 0)

    def test_zero_budget(self):
        task = ParityTask(2)
        truncated = TruncatedProtocol(task.noiseless_protocol(), 0)
        result = run_protocol(truncated, [1, 1], NoiselessChannel())
        assert result.rounds == 0
        assert result.outputs == [(), ()]

    def test_length_metadata(self):
        task = ParityTask(5)
        assert TruncatedProtocol(task.noiseless_protocol(), 3).length() == 3
        assert TruncatedProtocol(task.noiseless_protocol(), 9).length() == 5

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            TruncatedProtocol(_constant_protocol(1, 1, None), -1)


class TestEnergyAccounting:
    def test_beeps_per_party_counted(self):
        task = ParityTask(3)
        result = run_protocol(
            task.noiseless_protocol(), [1, 0, 1], NoiselessChannel()
        )
        assert result.beeps_per_party == (1, 0, 1)
        assert result.total_energy == 2

    def test_input_set_energy_one_each(self, rng):
        task = InputSetTask(5)
        inputs = task.sample_inputs(rng)
        result = run_protocol(
            task.noiseless_protocol(), inputs, NoiselessChannel()
        )
        assert result.beeps_per_party == (1,) * 5

    def test_simulation_energy_overhead(self, rng):
        """Noise resilience costs energy too: the chunk scheme's owners
        phase makes parties beep far more than once."""
        from repro.channels import CorrelatedNoiseChannel
        from repro.simulation import ChunkCommitSimulator

        task = InputSetTask(4)
        inputs = task.sample_inputs(rng)
        result = ChunkCommitSimulator().simulate(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.1, rng=0),
        )
        assert result.total_energy > 4


class TestScriptedChannel:
    def test_flip_rounds(self):
        channel = ScriptedChannel(flip_rounds=[1, 2])
        assert channel.transmit((0, 0)).common == 0
        assert channel.transmit((0, 0)).common == 1  # scripted 0->1 flip
        assert channel.transmit((1, 0)).common == 0  # scripted 1->0 flip
        assert channel.transmit((1, 0)).common == 1  # no flip scheduled
        assert channel.rounds_elapsed == 4

    def test_pattern(self):
        channel = ScriptedChannel(pattern=(1, 0, 1))
        assert channel.transmit((0,)).common == 1
        assert channel.transmit((0,)).common == 0
        assert channel.transmit((1,)).common == 0
        # Beyond the pattern: clean.
        assert channel.transmit((0,)).common == 0

    def test_one_sided_up_suppresses_down_flips(self):
        channel = ScriptedChannel(flip_rounds=[0, 1], one_sided_up=True)
        assert channel.transmit((1, 0)).common == 1  # flip suppressed
        assert channel.transmit((0, 0)).common == 1  # 0->1 allowed

    def test_one_sided_down(self):
        channel = ScriptedChannel(flip_rounds=[0, 1], one_sided_down=True)
        assert channel.transmit((0,)).common == 0  # 0->1 blocked
        assert channel.transmit((1,)).common == 0  # 1->0 allowed

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScriptedChannel()
        with pytest.raises(ConfigurationError):
            ScriptedChannel(flip_rounds=[0], pattern=(1,))
        with pytest.raises(ConfigurationError):
            ScriptedChannel(flip_rounds=[-1])
        with pytest.raises(ConfigurationError):
            ScriptedChannel(
                flip_rounds=[0], one_sided_up=True, one_sided_down=True
            )


class TestScriptedFaultInjection:
    """Deterministic fault-injection through the simulators."""

    def test_single_flip_causes_exactly_one_retry(self, rng):
        """Flip one round inside the first chunk's simulation phase; the
        majority still decodes correctly if repetitions > 2, so pick
        repetitions=1 to force a wrong chunk, and watch the verification
        catch it: attempts == commits + 1."""
        from repro.core.formal import NoiseModel
        from repro.simulation import (
            ChunkCommitSimulator,
            SimulationParameters,
        )

        task = InputSetTask(3)
        inputs = [1, 2, 3]
        params = SimulationParameters(
            repetitions=1, verification_repetitions=1
        )
        simulator = ChunkCommitSimulator(
            params, noise_model=NoiseModel.two_sided(0.1)
        )
        # Round 0 carries virtual round 1 (value 1, since input 1 is
        # held): flipping it to 0 suppresses a beep; the beeper flags it.
        channel = ScriptedChannel(flip_rounds=[0])
        result = simulator.simulate(
            task.noiseless_protocol(), inputs, channel
        )
        report = result.metadata["report"]
        assert report.chunk_commits == 2
        assert report.chunk_attempts == 3  # one retry, then clean
        assert task.is_correct(inputs, result.outputs)

    def test_clean_script_no_retries(self, rng):
        from repro.core.formal import NoiseModel
        from repro.simulation import (
            ChunkCommitSimulator,
            SimulationParameters,
        )

        task = InputSetTask(3)
        inputs = [1, 2, 3]
        simulator = ChunkCommitSimulator(
            SimulationParameters(repetitions=1, verification_repetitions=1),
            noise_model=NoiseModel.two_sided(0.1),
        )
        channel = ScriptedChannel(flip_rounds=[])
        result = simulator.simulate(
            task.noiseless_protocol(), inputs, channel
        )
        report = result.metadata["report"]
        assert report.chunk_attempts == report.chunk_commits == 2

    def test_rewind_unwinds_buried_error(self):
        """The regression scenario behind the vote-then-extend ordering:
        corrupt round 0 (suppress a beep) and let several clean rounds
        pile on top; the rewind walk must dig all the way back."""
        from repro.core.formal import NoiseModel
        from repro.simulation import RewindSimulator, SimulationParameters

        task = InputSetTask(3)
        inputs = [1, 2, 3]
        # Iteration 0: alarm round (round 0, clean), sim round (round 1).
        # Flip round 1 (the first simulation round, virtual round 1 where
        # input 1 beeps) from 1 to 0 -> buried error.
        channel = ScriptedChannel(flip_rounds=[1], one_sided_down=True)
        simulator = RewindSimulator(
            SimulationParameters(
                rewind_budget_factor=4.0, rewind_budget_extra=16
            ),
            noise_model=NoiseModel.suppression(0.1),
        )
        result = simulator.simulate(
            task.noiseless_protocol(), inputs, channel
        )
        report = result.metadata["report"]
        assert report.rewinds >= 1
        assert task.is_correct(inputs, result.outputs)
