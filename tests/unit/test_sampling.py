"""Unit tests for the Monte-Carlo ζ estimator."""

import pytest

from repro.core.formal import NoiseModel
from repro.errors import ConfigurationError
from repro.lowerbound import (
    LowerBoundAnalyzer,
    estimate_zeta,
    sample_zeta_points,
    theory,
)
from repro.tasks.input_set import input_set_formal_protocol


class TestSampleZetaPoints:
    def test_sample_count(self):
        protocol = input_set_formal_protocol(3)
        points = sample_zeta_points(protocol, 1 / 3, samples=20, seed=0)
        assert len(points) == 20

    def test_samples_have_positive_probability(self):
        """Pairs drawn by executing the protocol are by construction in
        the support of the joint distribution."""
        protocol = input_set_formal_protocol(3)
        for point in sample_zeta_points(protocol, 1 / 3, 30, seed=1):
            assert point.probability > 0.0

    def test_reproducible(self):
        protocol = input_set_formal_protocol(3)
        a = sample_zeta_points(protocol, 1 / 3, 10, seed=7)
        b = sample_zeta_points(protocol, 1 / 3, 10, seed=7)
        assert [p.zeta for p in a] == [p.zeta for p in b]

    def test_validation(self):
        protocol = input_set_formal_protocol(2)
        with pytest.raises(ConfigurationError):
            sample_zeta_points(protocol, 1 / 3, samples=0)


class TestEstimateZeta:
    def test_c2_never_violated_at_n8(self):
        """Theorem C.2 pointwise, at a size the exact enumerator cannot
        reach: 300 sampled pairs, zero cap violations."""
        protocol = input_set_formal_protocol(8)
        cap = theory.c2_zeta_bound(8, protocol.length())
        summary = estimate_zeta(
            protocol, 1 / 3, samples=300, seed=2, c2_cap=cap
        )
        assert summary.c2_violations == 0
        assert summary.max_zeta_in_good <= cap

    def test_good_event_rate_is_high(self):
        """Lemma C.5's floor (1/3) is comfortably exceeded by the naive
        protocol's executions."""
        protocol = input_set_formal_protocol(6)
        summary = estimate_zeta(protocol, 1 / 3, samples=200, seed=3)
        assert summary.good_event_rate >= 0.5

    def test_agrees_with_exact_analyzer_at_n2(self):
        """The Monte-Carlo estimate of E[ζ | 𝒢] converges to the exact
        enumeration's value."""
        protocol = input_set_formal_protocol(2)
        exact = LowerBoundAnalyzer(
            protocol, NoiseModel.one_sided(1 / 3)
        ).expected_zeta_given_good()
        summary = estimate_zeta(protocol, 1 / 3, samples=1500, seed=4)
        assert summary.mean_zeta_given_good == pytest.approx(
            exact, rel=0.15
        )

    def test_no_cap_counts_zero_violations(self):
        protocol = input_set_formal_protocol(3)
        summary = estimate_zeta(protocol, 1 / 3, samples=20, seed=5)
        assert summary.c2_violations == 0
