"""The observability layer's two hard guarantees, plus sink mechanics.

* **Disabled is free** — ``observe=None`` and :data:`NO_OBSERVER` change
  nothing and record nothing.
* **Tracing never perturbs** — traced and untraced executions are bitwise
  identical (transcripts, outputs, SweepPoints), across every layer:
  engine, simulators, trial runners, sweeps.

Plus the event schema: each instrumented layer emits the events
documented in :mod:`repro.observe`, with internally consistent fields.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis.sweep import SweepSpec, estimate_success, run_sweep_point
from repro.channels import (
    CorrelatedNoiseChannel,
    NoiselessChannel,
    SuppressionNoiseChannel,
)
from repro.core import run_protocol
from repro.observe import (
    JsonlSink,
    MetricsCollector,
    NO_OBSERVER,
    NullObserver,
    Observer,
    SummarySink,
    read_jsonl,
)
from repro.parallel import (
    ChannelSpec,
    ProcessPoolRunner,
    ProtocolExecutor,
    SerialRunner,
    SimulationExecutor,
    SimulatorSpec,
)
from repro.simulation import (
    ChunkCommitSimulator,
    HierarchicalSimulator,
    RepetitionSimulator,
    RewindSimulator,
)
from repro.tasks import InputSetTask, ParityTask


def _sample(task, seed=0):
    import random

    return task.sample_inputs(random.Random(seed))


def _run_traced(task, channel_factory, simulator=None, seed=11):
    collector = MetricsCollector()
    observer = Observer([collector])
    inputs = _sample(task)
    if simulator is None:
        result = run_protocol(
            task.noiseless_protocol(),
            inputs,
            channel_factory(seed),
            observe=observer,
        )
    else:
        result = simulator.simulate(
            task.noiseless_protocol(),
            inputs,
            channel_factory(seed),
            observe=observer,
        )
    return result, collector


class TestObserverMechanics:
    def test_emit_builds_record_with_event_key(self):
        collector = MetricsCollector()
        Observer([collector]).emit("ping", value=3)
        assert collector.events == [{"event": "ping", "value": 3}]

    def test_disabled_observer_emits_nothing(self):
        collector = MetricsCollector()
        observer = Observer([collector])
        observer.enabled = False
        observer.emit("ping")
        assert collector.events == []

    def test_null_observer_is_disabled_and_silent(self):
        assert NO_OBSERVER.enabled is False
        assert isinstance(NO_OBSERVER, NullObserver)
        NO_OBSERVER.emit("ping", x=1)  # hard no-op even if called

    def test_context_manager_closes_sinks(self):
        stream = io.StringIO()
        with Observer([SummarySink(stream)]) as observer:
            observer.emit("ping")
        assert "ping" in stream.getvalue()

    def test_collector_counters_and_accessors(self):
        collector = MetricsCollector()
        observer = Observer([collector])
        observer.emit("chunk", committed=True, rounds=5)
        observer.emit("chunk", committed=False, rounds=7)
        assert collector.count("chunk") == 2
        assert collector.total("chunk", "rounds") == 12
        assert collector.total("chunk", "committed") == 1  # bools count
        assert len(collector.events_of("chunk")) == 2
        collector.clear()
        assert collector.count("chunk") == 0


class TestSinkRoundTrip:
    def test_jsonl_stream_round_trips_into_collector(self):
        stream = io.StringIO()
        direct = MetricsCollector()
        with Observer([JsonlSink(stream), direct]) as observer:
            observer.emit("alpha", n=4, rate=0.5, label="x")
            observer.emit("beta", flag=True)
        replayed = MetricsCollector()
        for record in read_jsonl(io.StringIO(stream.getvalue())):
            replayed.handle(record)
        # JSON maps True -> true -> True; events and counters survive.
        assert replayed.events == direct.events
        assert replayed.counters == direct.counters

    def test_jsonl_path_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with Observer([JsonlSink(str(path))]) as observer:
            observer.emit("alpha", n=1)
            observer.emit("alpha", n=2)
        with open(path, encoding="utf-8") as handle:
            records = read_jsonl(handle)
        assert [record["n"] for record in records] == [1, 2]
        assert all(record["event"] == "alpha" for record in records)

    def test_jsonl_lines_are_valid_json(self):
        stream = io.StringIO()
        with Observer([JsonlSink(stream)]) as observer:
            observer.emit("alpha", nested_ok={"a": 1})
        for line in stream.getvalue().splitlines():
            json.loads(line)

    def test_summary_sink_renders_counts(self):
        sink = SummarySink(io.StringIO())
        sink.handle({"event": "chunk", "rounds": 4})
        sink.handle({"event": "chunk", "rounds": 6})
        rendered = sink.render()
        assert "chunk" in rendered and "x2" in rendered
        assert "rounds" in rendered


class TestJsonlSinkLongRunning:
    """The long-running-producer contract: append mode, flush-on-event,
    context-manager close — a live ``repro sweep status`` must be able
    to tail the file without ever seeing a truncated JSON line."""

    def test_append_mode_preserves_existing_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.handle({"event": "before", "run": 1})
        # A resumed run reopens the same file; append keeps history.
        with JsonlSink(str(path), append=True) as sink:
            sink.handle({"event": "after", "run": 2})
        with open(path, encoding="utf-8") as handle:
            events = [record["event"] for record in read_jsonl(handle)]
        assert events == ["before", "after"]

    def test_truncate_mode_still_default(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for run in (1, 2):
            with JsonlSink(str(path)) as sink:
                sink.handle({"event": "only", "run": run})
        with open(path, encoding="utf-8") as handle:
            records = read_jsonl(handle)
        assert [record["run"] for record in records] == [2]

    def test_flush_on_event_is_tailable_mid_run(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(str(path), append=True, flush=True)
        try:
            for index in range(3):
                sink.handle({"event": "tick", "index": index})
                # Read back *without* closing the writer: every line on
                # disk is complete JSON at every instant.
                with open(path, encoding="utf-8") as handle:
                    records = read_jsonl(handle)
                assert [record["index"] for record in records] == list(
                    range(index + 1)
                )
        finally:
            sink.close()

    def test_sink_is_a_context_manager(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.handle({"event": "x"})
        # close() ran on exit: the stream is released and reusable state
        # reset, so a fresh append-mode open sees the flushed line.
        with open(path, encoding="utf-8") as handle:
            assert len(read_jsonl(handle)) == 1

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "events.jsonl"))
        sink.handle({"event": "x"})
        sink.close()
        sink.close()


class TestEngineEvents:
    def test_protocol_run_summary_matches_result(self):
        task = ParityTask(4)
        result, collector = _run_traced(
            task, lambda seed: CorrelatedNoiseChannel(0.2, rng=seed)
        )
        (summary,) = collector.events_of("protocol_run")
        assert summary["rounds"] == result.rounds
        assert summary["n_parties"] == 4
        assert summary["flips_up"] == result.channel_stats.flips_up
        assert summary["flips_down"] == result.channel_stats.flips_down
        assert summary["total_energy"] == result.total_energy
        assert summary["elapsed_s"] >= 0.0

    def test_noise_flip_events_match_transcript(self):
        task = ParityTask(4)
        result, collector = _run_traced(
            task, lambda seed: CorrelatedNoiseChannel(0.4, rng=seed)
        )
        flips = collector.events_of("noise_flip")
        assert len(flips) == result.transcript.noisy_count
        assert [event["round"] for event in flips] == list(
            result.transcript.noise_positions()
        )
        for event in flips:
            expected = "down" if event["or_value"] else "up"
            assert event["direction"] == expected

    def test_noiseless_run_emits_no_flip_events(self):
        task = ParityTask(4)
        _, collector = _run_traced(task, lambda seed: NoiselessChannel())
        assert collector.count("noise_flip") == 0
        assert collector.count("protocol_run") == 1


class TestSimulatorEvents:
    def test_chunk_simulator_emits_attempts_and_owners(self):
        task = InputSetTask(6)
        result, collector = _run_traced(
            task,
            lambda seed: CorrelatedNoiseChannel(0.05, rng=seed),
            simulator=ChunkCommitSimulator(),
        )
        report = result.metadata["report"]
        assert collector.count("chunk_attempt") == report.chunk_attempts
        assert collector.count("owners_phase") == report.chunk_attempts
        committed = [
            event
            for event in collector.events_of("chunk_attempt")
            if event["committed"]
        ]
        assert len(committed) == report.chunk_commits
        (summary,) = collector.events_of("simulation")
        assert summary["scheme"] == "ChunkCommitSimulator"
        assert summary["simulated_rounds"] == result.rounds
        for event in collector.events_of("owners_phase"):
            assert event["owners_assigned"] <= event["ones"]
            assert event["unowned_ones"] >= 0

    def test_rewind_simulator_emits_rewind_events(self):
        task = ParityTask(4)
        result, collector = _run_traced(
            task,
            lambda seed: SuppressionNoiseChannel(0.3, rng=seed),
            simulator=RewindSimulator(),
            seed=1,
        )
        report = result.metadata["report"]
        assert collector.count("rewind") == report.rewinds
        assert report.rewinds > 0, "seed should produce at least one rewind"
        for event in collector.events_of("rewind"):
            assert event["position"] >= 0

    def test_hierarchical_simulator_emits_progress_checks(self):
        task = InputSetTask(6)
        result, collector = _run_traced(
            task,
            lambda seed: CorrelatedNoiseChannel(0.05, rng=seed),
            simulator=HierarchicalSimulator(),
        )
        report = result.metadata["report"]
        checks = collector.events_of("progress_check")
        assert len(checks) == report.extra["progress_checks"]
        truncated = sum(event["truncated"] for event in checks)
        assert truncated == report.rewinds
        leaves = collector.events_of("chunk_attempt")
        # Idle leaves emit nothing; non-idle ones each have an owners phase.
        assert len(leaves) == collector.count("owners_phase")
        assert len(leaves) <= report.chunk_attempts

    def test_repetition_simulator_emits_summary(self):
        task = ParityTask(4)
        result, collector = _run_traced(
            task,
            lambda seed: CorrelatedNoiseChannel(0.1, rng=seed),
            simulator=RepetitionSimulator(),
        )
        (summary,) = collector.events_of("simulation")
        assert summary["scheme"] == "RepetitionSimulator"
        assert summary["simulated_rounds"] == result.rounds


class TestRunnerEvents:
    def _executor(self, task):
        return SimulationExecutor(
            task=task,
            channel=ChannelSpec.of(CorrelatedNoiseChannel, 0.05),
            simulator=SimulatorSpec.of(ChunkCommitSimulator),
        )

    def test_serial_runner_emits_trial_and_batch_events(self):
        task = InputSetTask(4)
        collector = MetricsCollector()
        batch = SerialRunner().run_trials(
            task, self._executor(task), 4, seed=2,
            observe=Observer([collector]),
        )
        trials = collector.events_of("trial")
        assert [event["index"] for event in trials] == [0, 1, 2, 3]
        for event, record in zip(trials, batch.records):
            assert event["success"] == record.success
            assert event["rounds"] == record.rounds
            assert event["flips"] == record.flips
            assert event["elapsed_s"] > 0.0
        (summary,) = collector.events_of("sweep_batch")
        totals = batch.aggregate_channel_stats()
        assert summary["trials"] == 4
        assert summary["channel_rounds"] == totals.rounds
        assert summary["flips_up"] == totals.flips_up
        assert summary["parallel"] is False

    def test_pool_runner_emits_worker_chunks(self):
        task = InputSetTask(4)
        collector = MetricsCollector()
        with ProcessPoolRunner(workers=2, chunk_size=2) as runner:
            batch = runner.run_trials(
                task, self._executor(task), 4, seed=2,
                observe=Observer([collector]),
            )
        if batch.timing["parallel"]:
            chunks = collector.events_of("worker_chunk")
            assert sum(event["trials"] for event in chunks) == 4
            (summary,) = collector.events_of("sweep_batch")
            assert summary["parallel"] is True
        # Fallback environments still emit trial + batch events.
        assert collector.count("trial") == 4
        assert collector.count("sweep_batch") == 1


class TestTracingNeverPerturbs:
    """Traced and untraced runs are bitwise identical."""

    def test_engine_transcript_identical(self):
        task = ParityTask(4)
        inputs = _sample(task)
        untraced = run_protocol(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.2, rng=13),
        )
        traced = run_protocol(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.2, rng=13),
            observe=Observer([MetricsCollector()]),
        )
        assert traced.transcript.or_values() == untraced.transcript.or_values()
        assert traced.transcript.common_view() == untraced.transcript.common_view()
        assert traced.outputs == untraced.outputs
        assert traced.channel_stats.snapshot() == untraced.channel_stats.snapshot()

    @pytest.mark.parametrize(
        "simulator_factory",
        [
            ChunkCommitSimulator,
            HierarchicalSimulator,
            RepetitionSimulator,
        ],
    )
    def test_simulator_transcript_identical(self, simulator_factory):
        task = InputSetTask(6)
        inputs = _sample(task)
        untraced = simulator_factory().simulate(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.08, rng=21),
        )
        traced = simulator_factory().simulate(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.08, rng=21),
            observe=Observer([MetricsCollector()]),
        )
        assert traced.rounds == untraced.rounds
        assert traced.outputs == untraced.outputs
        assert (
            traced.transcript.or_values() == untraced.transcript.or_values()
        )

    def test_rewind_transcript_identical(self):
        task = ParityTask(4)
        inputs = _sample(task)
        untraced = RewindSimulator().simulate(
            task.noiseless_protocol(),
            inputs,
            SuppressionNoiseChannel(0.3, rng=5),
        )
        traced = RewindSimulator().simulate(
            task.noiseless_protocol(),
            inputs,
            SuppressionNoiseChannel(0.3, rng=5),
            observe=Observer([MetricsCollector()]),
        )
        assert traced.rounds == untraced.rounds
        assert (
            traced.transcript.or_values() == untraced.transcript.or_values()
        )

    @pytest.mark.parametrize(
        "simulator_factory",
        [
            ChunkCommitSimulator,
            HierarchicalSimulator,
            RepetitionSimulator,
            RewindSimulator,
        ],
    )
    def test_traced_tokens_match_untraced_desugared(self, simulator_factory):
        # Crossing both equivalence axes at once: a traced run with the
        # primitives' batch tokens must equal an untraced run with the
        # desugared per-round primitives.
        from repro.simulation.primitives import batch_tokens

        task = ParityTask(4)
        inputs = _sample(task)
        traced_tokens = simulator_factory().simulate(
            task.noiseless_protocol(),
            inputs,
            CorrelatedNoiseChannel(0.08, rng=77),
            observe=Observer([MetricsCollector()]),
        )
        with batch_tokens(False):
            untraced_plain = simulator_factory().simulate(
                task.noiseless_protocol(),
                inputs,
                CorrelatedNoiseChannel(0.08, rng=77),
            )
        assert traced_tokens.rounds == untraced_plain.rounds
        assert traced_tokens.outputs == untraced_plain.outputs
        assert traced_tokens.beeps_per_party == untraced_plain.beeps_per_party
        assert (
            traced_tokens.transcript.or_values()
            == untraced_plain.transcript.or_values()
        )
        assert (
            traced_tokens.transcript.common_view()
            == untraced_plain.transcript.common_view()
        )
        assert traced_tokens.channel_stats == untraced_plain.channel_stats

    def test_sweep_points_identical_across_tracing_and_backends(self):
        task = InputSetTask(4)
        executor = ProtocolExecutor(
            task=task, channel=ChannelSpec.of(CorrelatedNoiseChannel, 0.1)
        )
        baseline = estimate_success(task, executor, 6, seed=9)
        traced_serial = estimate_success(
            task, executor, 6, seed=9,
            observe=Observer([MetricsCollector()]),
        )
        with ProcessPoolRunner(workers=2) as runner:
            traced_pool = run_sweep_point(
                task,
                executor,
                SweepSpec(
                    trials=6,
                    seed=9,
                    runner=runner,
                    observe=Observer([MetricsCollector()]),
                ),
            )
        assert traced_serial.to_dict() == baseline.to_dict()
        assert traced_pool.to_dict() == baseline.to_dict()

    def test_disabled_observer_collects_nothing_through_stack(self):
        task = InputSetTask(4)
        executor = ProtocolExecutor(
            task=task, channel=ChannelSpec.of(CorrelatedNoiseChannel, 0.1)
        )
        collector = MetricsCollector()
        observer = Observer([collector])
        observer.enabled = False
        point = estimate_success(task, executor, 3, seed=9, observe=observer)
        assert collector.events == []
        assert point.to_dict() == estimate_success(
            task, executor, 3, seed=9
        ).to_dict()
