"""Unit tests for the size-estimation task."""

import random

import pytest

from repro.channels import (
    CorrelatedNoiseChannel,
    NoiselessChannel,
    OneSidedNoiseChannel,
)
from repro.core import run_protocol
from repro.errors import ConfigurationError, TaskError
from repro.simulation import RepetitionSimulator
from repro.tasks import SizeEstimateTask


class TestConstruction:
    def test_phase_count(self):
        task = SizeEstimateTask(16, extra_phases=6)
        assert task.phases == 4 + 6

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SizeEstimateTask(0)
        with pytest.raises(ConfigurationError):
            SizeEstimateTask(4, tolerance=0.5)
        with pytest.raises(ConfigurationError):
            SizeEstimateTask(4, extra_phases=0)


class TestSampling:
    def test_tape_shape(self, rng):
        task = SizeEstimateTask(8)
        tapes = task.sample_inputs(rng)
        assert len(tapes) == 8
        assert all(len(tape) == task.phases for tape in tapes)

    def test_phase_zero_always_beeps(self, rng):
        task = SizeEstimateTask(8)
        for _ in range(10):
            tapes = task.sample_inputs(rng)
            assert all(tape[0] == 1 for tape in tapes)

    def test_late_phases_mostly_silent(self, rng):
        task = SizeEstimateTask(4, extra_phases=10)
        beeps = 0
        for _ in range(50):
            tapes = task.sample_inputs(rng)
            beeps += sum(tape[-1] for tape in tapes)
        assert beeps < 10  # Bernoulli(2^-12) x 200 draws


class TestReferenceOutput:
    def test_first_silent_phase(self):
        task = SizeEstimateTask(2, extra_phases=2)
        # phases = 1 + 2 = 3; tapes: both beep phase 0, silence phase 1.
        tapes = [(1, 0, 0), (1, 0, 1)]
        assert task.reference_output(tapes) == 2  # 2^1... wait: phase 1
        # phase 1 has tape[1] = (0, 0) -> silent -> estimate 2^1 = 2.

    def test_never_silent_caps_at_max(self):
        task = SizeEstimateTask(2, extra_phases=2)
        tapes = [(1, 1, 1), (1, 1, 1)]
        assert task.reference_output(tapes) == 1 << 3

    def test_validation(self):
        task = SizeEstimateTask(3)
        with pytest.raises(TaskError):
            task.reference_output([(1, 0)])


class TestCorrectness:
    def test_agreement_required(self):
        task = SizeEstimateTask(8)
        assert not task.is_correct([], [8, 16] + [8] * 6)

    def test_tolerance_window(self):
        task = SizeEstimateTask(16, tolerance=4.0)
        assert task.is_correct([], [16] * 16)
        assert task.is_correct([], [4] * 16)
        assert task.is_correct([], [64] * 16)
        assert not task.is_correct([], [2] * 16)
        assert not task.is_correct([], [256] * 16)

    def test_empty_outputs_fail(self):
        assert not SizeEstimateTask(4).is_correct([], [])


class TestProtocol:
    @pytest.mark.parametrize("n", [2, 8, 32, 128])
    def test_noiseless_estimates_within_tolerance(self, n):
        task = SizeEstimateTask(n)
        rng = random.Random(n)
        wins = 0
        trials = 40
        for _ in range(trials):
            tapes = task.sample_inputs(rng)
            result = run_protocol(
                task.noiseless_protocol(), tapes, NoiselessChannel()
            )
            wins += task.is_correct(tapes, result.outputs)
        assert wins / trials >= 0.95

    def test_estimates_concentrate_near_n(self):
        """The median estimate is within a factor of 4 of n (much tighter
        than the pass tolerance)."""
        n = 64
        task = SizeEstimateTask(n)
        rng = random.Random(0)
        estimates = []
        for _ in range(60):
            tapes = task.sample_inputs(rng)
            result = run_protocol(
                task.noiseless_protocol(), tapes, NoiselessChannel()
            )
            estimates.append(result.outputs[0])
        estimates.sort()
        median = estimates[len(estimates) // 2]
        assert n / 4 <= median <= n * 4

    def test_upward_noise_inflates_estimates(self):
        """0->1 flips delay the first silence, biasing estimates up —
        the direction-specific damage §2.1 discusses."""
        n = 8
        task = SizeEstimateTask(n, extra_phases=8)
        rng = random.Random(1)
        clean, noisy = [], []
        for trial in range(60):
            tapes = task.sample_inputs(rng)
            clean.append(
                run_protocol(
                    task.noiseless_protocol(), tapes, NoiselessChannel()
                ).outputs[0]
            )
            noisy.append(
                run_protocol(
                    task.noiseless_protocol(),
                    tapes,
                    OneSidedNoiseChannel(0.3, rng=trial),
                ).outputs[0]
            )
        # Each 0->1 flip on a would-be-silent phase doubles the estimate;
        # at epsilon = 0.3 the expected inflation factor is ~1.6x.
        assert sum(noisy) / len(noisy) > 1.3 * sum(clean) / len(clean)

    def test_simulation_restores_estimates(self):
        task = SizeEstimateTask(16)
        rng = random.Random(2)
        simulator = RepetitionSimulator()
        wins = 0
        for trial in range(20):
            tapes = task.sample_inputs(rng)
            channel = CorrelatedNoiseChannel(0.2, rng=trial)
            result = simulator.simulate(
                task.noiseless_protocol(), tapes, channel
            )
            wins += task.is_correct(tapes, result.outputs)
        assert wins >= 18
