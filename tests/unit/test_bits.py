"""Unit tests for :mod:`repro.util.bits`."""

import pytest

from repro.errors import ChannelError
from repro.util.bits import (
    bits_to_int,
    hamming_distance,
    int_to_bits,
    majority_bit,
    or_reduce,
    validate_bit,
    validate_bits,
)


class TestValidateBit:
    def test_accepts_zero_and_one(self):
        assert validate_bit(0) == 0
        assert validate_bit(1) == 1

    def test_accepts_booleans(self):
        assert validate_bit(True) == 1
        assert validate_bit(False) == 0

    def test_rejects_other_integers(self):
        with pytest.raises(ChannelError):
            validate_bit(2)
        with pytest.raises(ChannelError):
            validate_bit(-1)

    def test_rejects_non_integers(self):
        with pytest.raises(ChannelError):
            validate_bit(0.5)
        with pytest.raises(ChannelError):
            validate_bit("1")
        with pytest.raises(ChannelError):
            validate_bit(None)


class TestValidateBits:
    def test_returns_tuple(self):
        assert validate_bits([1, 0, True]) == (1, 0, 1)

    def test_empty_is_empty_tuple(self):
        assert validate_bits([]) == ()

    def test_propagates_errors(self):
        with pytest.raises(ChannelError):
            validate_bits([0, 3])


class TestOrReduce:
    def test_empty_is_zero(self):
        assert or_reduce([]) == 0

    def test_all_zero(self):
        assert or_reduce([0, 0, 0]) == 0

    def test_single_one(self):
        assert or_reduce([0, 1, 0]) == 1

    def test_all_ones(self):
        assert or_reduce([1, 1]) == 1


class TestMajorityBit:
    def test_clear_majority_one(self):
        assert majority_bit([1, 1, 0]) == 1

    def test_clear_majority_zero(self):
        assert majority_bit([1, 0, 0]) == 0

    def test_tie_goes_to_zero(self):
        assert majority_bit([1, 0]) == 0
        assert majority_bit([1, 1, 0, 0]) == 0

    def test_empty_is_zero(self):
        assert majority_bit([]) == 0

    def test_single_vote(self):
        assert majority_bit([1]) == 1
        assert majority_bit([0]) == 0


class TestHammingDistance:
    def test_identical_words(self):
        assert hamming_distance((1, 0, 1), (1, 0, 1)) == 0

    def test_opposite_words(self):
        assert hamming_distance((0, 0), (1, 1)) == 2

    def test_partial_difference(self):
        assert hamming_distance((1, 0, 1, 0), (1, 1, 1, 1)) == 2

    def test_length_mismatch_raises(self):
        with pytest.raises(ChannelError):
            hamming_distance((1,), (1, 0))


class TestIntBitsRoundTrip:
    def test_known_encoding(self):
        assert int_to_bits(5, 4) == (0, 1, 0, 1)

    def test_known_decoding(self):
        assert bits_to_int((0, 1, 0, 1)) == 5

    def test_round_trip_all_values(self):
        for value in range(16):
            assert bits_to_int(int_to_bits(value, 4)) == value

    def test_zero_width_zero(self):
        assert int_to_bits(0, 1) == (0,)

    def test_overflow_raises(self):
        with pytest.raises(ChannelError):
            int_to_bits(16, 4)

    def test_negative_raises(self):
        with pytest.raises(ChannelError):
            int_to_bits(-1, 4)

    def test_bits_to_int_validates(self):
        with pytest.raises(ChannelError):
            bits_to_int((1, 2))

    def test_msb_first_convention(self):
        assert int_to_bits(8, 4) == (1, 0, 0, 0)
        assert bits_to_int((1, 0, 0, 0)) == 8
