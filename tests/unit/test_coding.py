"""Unit tests for the coding substrate."""

import pytest

from repro.coding import (
    GreedyRandomCode,
    HadamardCode,
    MinDistanceDecoder,
    MLDecoder,
    RepetitionCode,
)
from repro.coding.random_code import default_code_length
from repro.core.formal import NoiseModel
from repro.errors import CodingError, ConfigurationError, DecodingError


class TestRepetitionCode:
    def test_length(self):
        code = RepetitionCode(num_symbols=4, repetitions=3)
        assert code.codeword_length == 2 * 3

    def test_encoding_repeats_bits(self):
        code = RepetitionCode(num_symbols=4, repetitions=2)
        assert code.encode(2) == (1, 1, 0, 0)  # 2 = binary 10

    def test_min_distance_equals_repetitions(self):
        code = RepetitionCode(num_symbols=4, repetitions=5)
        assert code.min_distance() == 5

    def test_injective(self):
        RepetitionCode(num_symbols=8, repetitions=3).validate_injective()

    def test_symbol_range_checked(self):
        code = RepetitionCode(num_symbols=4, repetitions=2)
        with pytest.raises(CodingError):
            code.encode(4)
        with pytest.raises(CodingError):
            code.encode(-1)

    def test_single_symbol_codebook(self):
        code = RepetitionCode(num_symbols=1, repetitions=2)
        assert code.encode(0) == (0, 0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RepetitionCode(num_symbols=2, repetitions=0)
        with pytest.raises(ConfigurationError):
            RepetitionCode(num_symbols=0, repetitions=1)


class TestHadamardCode:
    def test_zero_maps_to_all_zero(self):
        code = HadamardCode(num_symbols=8)
        assert code.encode(0) == (0,) * code.codeword_length

    def test_length_is_power_of_two(self):
        code = HadamardCode(num_symbols=5)
        assert code.codeword_length == 8  # 2^ceil(log2 5)

    def test_relative_distance_half(self):
        code = HadamardCode(num_symbols=8)
        assert code.min_distance() == code.codeword_length // 2

    def test_nonzero_weight_exactly_half(self):
        code = HadamardCode(num_symbols=8)
        for symbol in range(1, 8):
            assert sum(code.encode(symbol)) == code.codeword_length // 2

    def test_injective(self):
        HadamardCode(num_symbols=16).validate_injective()


class TestGreedyRandomCode:
    def test_default_length_scales_logarithmically(self):
        assert default_code_length(4) < default_code_length(64)
        assert default_code_length(64) == pytest.approx(
            12 * 6, abs=1
        )

    def test_distance_floor_respected(self):
        code = GreedyRandomCode(10, 40, seed=1)
        assert code.min_distance() >= code.min_distance_floor

    def test_weight_floor_respected(self):
        code = GreedyRandomCode(10, 40, seed=2)
        for symbol in range(10):
            assert sum(code.encode(symbol)) >= code.min_weight_floor

    def test_zero_word_reserved(self):
        code = GreedyRandomCode(10, 40, include_zero_word=True, seed=3)
        assert code.encode(0) == (0,) * 40
        for symbol in range(1, 10):
            assert sum(code.encode(symbol)) >= code.min_weight_floor

    def test_deterministic_given_seed(self):
        a = GreedyRandomCode(8, 32, seed=7)
        b = GreedyRandomCode(8, 32, seed=7)
        assert a.codewords == b.codewords

    def test_seed_changes_codebook(self):
        a = GreedyRandomCode(8, 32, seed=7)
        b = GreedyRandomCode(8, 32, seed=8)
        assert a.codewords != b.codewords

    def test_impossible_parameters_raise(self):
        # 100 codewords of length 4 at distance >= 2 cannot exist.
        with pytest.raises(CodingError):
            GreedyRandomCode(100, 4, min_distance_fraction=0.5, seed=0)

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            GreedyRandomCode(4, 16, min_distance_fraction=0.6)
        with pytest.raises(ConfigurationError):
            GreedyRandomCode(4, 16, min_weight_fraction=-0.1)

    def test_injective(self):
        GreedyRandomCode(20, 64, seed=5).validate_injective()

    def test_rate_property(self):
        code = GreedyRandomCode(16, 64, seed=1)
        assert code.rate == pytest.approx(4 / 64)


class TestMLDecoder:
    def test_noiseless_round_trip(self):
        code = GreedyRandomCode(10, 32, seed=0)
        decoder = MLDecoder(code, NoiseModel(up=0.0, down=0.0))
        for symbol in range(10):
            assert decoder.decode(code.encode(symbol)) == symbol

    def test_bsc_corrects_small_errors(self):
        code = GreedyRandomCode(8, 40, seed=1)
        decoder = MLDecoder(code, NoiseModel.two_sided(0.2))
        word = list(code.encode(3))
        word[0] ^= 1
        word[5] ^= 1
        word[11] ^= 1
        assert decoder.decode(word) == 3

    def test_z_channel_eliminates_inconsistent_codewords(self):
        """Under 0->1 noise, a received 0 where a codeword has 1 rules
        that codeword out (ML assigns it likelihood zero)."""
        code = HadamardCode(num_symbols=4)
        decoder = MLDecoder(code, NoiseModel.one_sided(0.4))
        # Send symbol 0 (all-zero word); flip many bits up.
        received = list(code.encode(0))
        received[0] = 1
        decoded = decoder.decode(received)
        # Every symbol whose codeword has a 1 where we received 0 is
        # impossible; the all-zero codeword remains consistent.
        likelihood = decoder.log_likelihood(decoded, received)
        assert likelihood > float("-inf")

    def test_one_sided_true_word_never_inconsistent(self):
        code = GreedyRandomCode(8, 40, seed=2)
        decoder = MLDecoder(code, NoiseModel.one_sided(1.0 / 3.0))
        word = list(code.encode(5))
        # Noise can only add 1s on zero positions.
        for index, bit in enumerate(word):
            if bit == 0 and index % 3 == 0:
                word[index] = 1
        assert decoder.log_likelihood(5, word) > float("-inf")

    def test_length_validation(self):
        code = GreedyRandomCode(4, 16, seed=0)
        decoder = MLDecoder(code, NoiseModel.two_sided(0.1))
        with pytest.raises(DecodingError):
            decoder.decode((0,) * 15)

    def test_ml_beats_min_distance_on_z_channel(self):
        """Construct a case where Hamming decoding errs but channel-aware
        ML decodes correctly on a Z-channel (0->1 flips only)."""
        # Codebook: symbol 0 = 0000, symbol 1 = 1110.
        class _Tiny(GreedyRandomCode):
            def __init__(self):
                pass

        from repro.coding.code import BlockCode

        class _Fixed(BlockCode):
            def __init__(self):
                super().__init__(2, 4)

            def encode(self, symbol):
                self._check_symbol(symbol)
                return (0, 0, 0, 0) if symbol == 0 else (1, 1, 1, 0)

        code = _Fixed()
        received = (1, 1, 0, 0)
        # Hamming: distance 2 from both; min-distance picks symbol 0 by
        # tie-break.  ML on a Z-channel knows symbol 1 is impossible (its
        # third 1 cannot become 0), so symbol 0 is the only choice - they
        # agree here.  Now received (1,1,1,1): symbol 1 needs one 0->1
        # flip; symbol 0 needs four.  ML picks 1.
        decoder = MLDecoder(code, NoiseModel.one_sided(0.2))
        assert decoder.decode(received) == 0
        assert decoder.decode((1, 1, 1, 1)) == 1

    def test_deterministic_tie_break(self):
        code = RepetitionCode(num_symbols=2, repetitions=2)
        decoder = MLDecoder(code, NoiseModel.two_sided(0.3))
        # (1, 0) is equidistant from (0,0) and (1,1): smaller symbol wins.
        assert decoder.decode((1, 0)) == 0


class TestMinDistanceDecoder:
    def test_round_trip(self):
        code = GreedyRandomCode(6, 24, seed=0)
        decoder = MinDistanceDecoder(code)
        for symbol in range(6):
            assert decoder.decode(code.encode(symbol)) == symbol

    def test_corrects_within_half_distance(self):
        code = HadamardCode(num_symbols=8)
        decoder = MinDistanceDecoder(code)
        word = list(code.encode(5))
        flips = code.min_distance() // 2 - 1
        for index in range(max(flips, 0)):
            word[index] ^= 1
        assert decoder.decode(word) == 5

    def test_length_validation(self):
        code = HadamardCode(num_symbols=4)
        decoder = MinDistanceDecoder(code)
        with pytest.raises(DecodingError):
            decoder.decode((1,))


class TestDecodingUnderSimulatedNoise:
    @pytest.mark.parametrize(
        "model",
        [
            NoiseModel.two_sided(0.1),
            NoiseModel.one_sided(1.0 / 3.0),
            NoiseModel.suppression(0.2),
        ],
        ids=["bsc", "z-up", "z-down"],
    )
    def test_high_success_rate(self, model):
        import random

        code = GreedyRandomCode(10, 48, seed=3)
        decoder = MLDecoder(code, model)
        rng = random.Random(0)
        successes = 0
        trials = 200
        for _ in range(trials):
            symbol = rng.randrange(10)
            word = []
            for bit in code.encode(symbol):
                if bit == 1:
                    word.append(0 if rng.random() < model.down else 1)
                else:
                    word.append(1 if rng.random() < model.up else 0)
            if decoder.decode(word) == symbol:
                successes += 1
        assert successes / trials > 0.95
