"""Deterministic unit tests of the MIS election's state machine.

The statistical MIS tests live in ``test_network.py``; here the coin
tapes are fixed by hand so every phase transition (candidate → winner,
neighbor domination, persistence of decisions) can be asserted exactly.
"""

from repro.core import run_protocol
from repro.network import MISTask, mis_protocol, ring
from repro.network.channel import NetworkBeepingChannel


def _run(adjacency, tapes, phases):
    protocol = mis_protocol(len(adjacency), phases)
    channel = NetworkBeepingChannel(adjacency, hear_self=False)
    return run_protocol(protocol, tapes, channel)


class TestSinglePhaseTransitions:
    # Path graph 0 - 1 - 2 (symmetric adjacency).
    PATH = [(1,), (0, 2), (1,)]

    def test_lone_candidate_wins_and_dominates(self):
        # Phase 0: only node 1 is a candidate -> hears no candidate beep,
        # wins, and its victory beep dominates nodes 0 and 2.
        tapes = [(0,), (1,), (0,)]
        result = _run(self.PATH, tapes, phases=1)
        assert result.outputs == [False, True, False]

    def test_adjacent_candidates_block_each_other(self):
        # Nodes 0 and 1 both candidates: each hears the other's beep, so
        # neither wins; node 2 (non-candidate) stays undecided too.
        tapes = [(1,), (1,), (0,)]
        result = _run(self.PATH, tapes, phases=1)
        assert result.outputs == [None, None, None]

    def test_non_adjacent_candidates_both_win(self):
        # Nodes 0 and 2 are not neighbors: both hear silence (node 1 is
        # not a candidate), both win; node 1 is dominated by both.
        tapes = [(1,), (0,), (1,)]
        result = _run(self.PATH, tapes, phases=1)
        assert result.outputs == [True, False, True]

    def test_decisions_persist_across_phases(self):
        # Phase 0 elects node 1.  Phase 1's tapes would make everyone a
        # candidate, but decided nodes stay silent, so nothing changes.
        tapes = [(0, 1), (1, 1), (0, 1)]
        result = _run(self.PATH, tapes, phases=2)
        assert result.outputs == [False, True, False]

    def test_undecided_node_can_win_later_phase(self):
        # Phase 0: nodes 0, 1 block each other.  Phase 1: only node 0
        # candidates -> wins; node 1 dominated; node 2 still undecided
        # (not adjacent to any winner) until it wins phase 2 alone.
        tapes = [(1, 1, 0), (1, 0, 0), (0, 0, 1)]
        result = _run(self.PATH, tapes, phases=3)
        assert result.outputs == [True, False, True]


class TestRingDynamics:
    def test_alternating_candidates_on_ring(self):
        # Ring of 4: nodes 0 and 2 candidate (non-adjacent) -> both win;
        # 1 and 3 dominated.  A valid MIS in one phase.
        tapes = [(1,), (0,), (1,), (0,)]
        result = _run(ring(4), tapes, phases=1)
        assert result.outputs == [True, False, True, False]
        task = MISTask(ring(4), cycles=1)
        assert task.is_correct([], result.outputs)

    def test_all_candidates_deadlock_one_phase(self):
        # Everyone candidates: everyone hears a neighbor, nobody wins.
        tapes = [(1,)] * 4
        result = _run(ring(4), tapes, phases=1)
        assert result.outputs == [None] * 4

    def test_round_structure_two_per_phase(self):
        tapes = [(1, 0), (0, 0), (1, 0), (0, 0)]
        result = _run(ring(4), tapes, phases=2)
        assert result.rounds == 4  # 2 rounds per phase
