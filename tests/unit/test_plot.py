"""Unit tests for the ASCII plotting helper."""

import pytest

from repro.analysis import ascii_plot
from repro.errors import ConfigurationError


class TestAsciiPlot:
    def test_contains_marks_and_axes(self):
        plot = ascii_plot([1, 2, 3], [1, 4, 9], width=20, height=6)
        assert plot.count("*") == 3
        assert "+--------------------" in plot
        assert "x: 1 .. 3" in plot

    def test_title_and_labels(self):
        plot = ascii_plot(
            [1, 2],
            [5, 6],
            title="My plot",
            x_label="rounds",
            y_label="succ",
        )
        lines = plot.splitlines()
        assert lines[0] == "My plot"
        assert "succ" in lines[1]
        assert "rounds: 1 .. 2" in lines[-1]

    def test_monotone_series_renders_monotone(self):
        """A strictly increasing series places later marks on higher or
        equal rows (visual monotonicity)."""
        plot = ascii_plot(
            [1, 2, 3, 4], [10, 20, 30, 40], width=40, height=8
        )
        grid = [
            line[1:] for line in plot.splitlines() if line.startswith("|")
        ]
        mark_rows = {}
        for row_index, row in enumerate(grid):
            for column, char in enumerate(row):
                if char == "*":
                    mark_rows[column] = row_index
        columns = sorted(mark_rows)
        rows = [mark_rows[c] for c in columns]
        assert rows == sorted(rows, reverse=True)

    def test_log_x_straightens_log_curve(self):
        """a + b·log2(n) data should land on (nearly) a straight line in
        log-x mode: equal column spacing for doubling n."""
        plot = ascii_plot(
            [4, 8, 16, 32],
            [10, 20, 30, 40],
            width=31,
            height=8,
            log_x=True,
        )
        grid = [
            line[1:] for line in plot.splitlines() if line.startswith("|")
        ]
        columns = sorted(
            column
            for row in grid
            for column, char in enumerate(row)
            if char == "*"
        )
        gaps = [b - a for a, b in zip(columns, columns[1:])]
        assert max(gaps) - min(gaps) <= 1

    def test_constant_series(self):
        plot = ascii_plot([1, 2, 3], [5, 5, 5])
        assert plot.count("*") == 3

    def test_single_point(self):
        plot = ascii_plot([1], [1])
        assert plot.count("*") == 1

    def test_scientific_ticks(self):
        plot = ascii_plot([1, 2], [1e-6, 2e6])
        assert "e" in plot.splitlines()[0] or "e" in plot

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([], [])
        with pytest.raises(ConfigurationError):
            ascii_plot([1], [1, 2])
        with pytest.raises(ConfigurationError):
            ascii_plot([1], [1], width=4)
        with pytest.raises(ConfigurationError):
            ascii_plot([1], [1], mark="ab")
        with pytest.raises(ConfigurationError):
            ascii_plot([0, 1], [1, 2], log_x=True)
