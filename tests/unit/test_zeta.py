"""Unit tests for the ζ progress measure (§C.2–C.3)."""

import math

import pytest

from repro.core.formal import NoiseModel
from repro.errors import ConfigurationError
from repro.lowerbound import theory
from repro.lowerbound.zeta import LowerBoundAnalyzer
from repro.tasks.input_set import input_set_formal_protocol

ONE_SIDED = NoiseModel.one_sided(1.0 / 3.0)


@pytest.fixture(scope="module")
def analyzer_n2():
    return LowerBoundAnalyzer(input_set_formal_protocol(2), ONE_SIDED)


class TestJointProbability:
    def test_consistent_transcript(self, analyzer_n2):
        # x = (1, 2): rounds 1,2 have beeps -> forced 1; rounds 3,4 silent.
        probability = analyzer_n2.joint_probability((1, 2), (1, 1, 0, 0))
        assert probability == pytest.approx((1 / 16) * (2 / 3) ** 2)

    def test_impossible_transcript(self, analyzer_n2):
        # One-sided noise cannot erase the beep in round 1.
        assert analyzer_n2.joint_probability((1, 2), (0, 1, 0, 0)) == 0.0

    def test_total_mass_is_one(self, analyzer_n2):
        total = sum(
            point.probability for point in analyzer_n2.enumerate_points()
        )
        assert total == pytest.approx(1.0)


class TestZetaPoint:
    def test_zero_probability_gives_zero_zeta(self, analyzer_n2):
        point = analyzer_n2.zeta_point((1, 2), (0, 1, 0, 0))
        assert point.probability == 0.0
        assert point.zeta == 0.0

    def test_positive_point_has_positive_z(self, analyzer_n2):
        point = analyzer_n2.zeta_point((1, 2), (1, 1, 0, 0))
        assert point.probability > 0
        if point.good:
            assert point.z_value > 0
            assert point.zeta == pytest.approx(
                point.probability / point.z_value
            )

    def test_good_set_matches_direct_computation(self, analyzer_n2):
        point = analyzer_n2.zeta_point((1, 1), (1, 0, 0, 0))
        # Duplicated inputs: G1 empty, so G empty.
        assert point.good == frozenset()

    def test_empty_good_set_infinite_zeta(self, analyzer_n2):
        point = analyzer_n2.zeta_point((1, 1), (1, 0, 0, 0))
        assert point.probability > 0
        assert math.isinf(point.zeta)
        assert not point.in_good_event


class TestTheoremC2Pointwise:
    """Theorem C.2: ζ(x, π) ≤ (4/n)·3^{4T/n} on the event 𝒢."""

    @pytest.mark.parametrize("n", [2, 3])
    def test_bound_holds_for_naive_protocol(self, n):
        protocol = input_set_formal_protocol(n)
        analyzer = LowerBoundAnalyzer(protocol, ONE_SIDED)
        bound = theory.c2_zeta_bound(n, protocol.length())
        worst = analyzer.max_zeta_in_good()
        assert worst <= bound * (1 + 1e-9)

    def test_bound_holds_for_repetition_protocol(self):
        protocol = input_set_formal_protocol(2, repetitions=2)
        analyzer = LowerBoundAnalyzer(protocol, ONE_SIDED)
        bound = theory.c2_zeta_bound(2, protocol.length())
        assert analyzer.max_zeta_in_good() <= bound * (1 + 1e-9)


class TestExpectations:
    def test_good_event_probability_in_unit_interval(self, analyzer_n2):
        probability = analyzer_n2.good_event_probability()
        assert 0.0 <= probability <= 1.0

    def test_conditional_expectation_nonnegative(self, analyzer_n2):
        assert analyzer_n2.expected_zeta_given_good() >= 0.0

    def test_correctness_probability_of_naive_protocol_is_low(self):
        """Running the noiseless protocol unprotected over one-sided
        ε = 1/3 noise succeeds rarely — the observation that motivates
        the whole coding question."""
        protocol = input_set_formal_protocol(2)
        analyzer = LowerBoundAnalyzer(protocol, ONE_SIDED)
        correctness = analyzer.correctness_probability(
            lambda x: frozenset(x)
        )
        # Success requires all >= 2 silent rounds to stay unflipped:
        assert correctness < 0.5

    def test_correctness_improves_with_repetitions(self):
        base = LowerBoundAnalyzer(
            input_set_formal_protocol(2), ONE_SIDED
        ).correctness_probability(lambda x: frozenset(x))
        hardened = LowerBoundAnalyzer(
            input_set_formal_protocol(2, repetitions=3), ONE_SIDED
        ).correctness_probability(lambda x: frozenset(x))
        assert hardened > base

    def test_noiseless_protocol_is_perfect_without_noise(self):
        analyzer = LowerBoundAnalyzer(
            input_set_formal_protocol(2), NoiseModel(up=0.0, down=0.0)
        )
        correctness = analyzer.correctness_probability(
            lambda x: frozenset(x)
        )
        assert correctness == pytest.approx(1.0)


class TestAnalyzerValidation:
    def test_good_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            LowerBoundAnalyzer(
                input_set_formal_protocol(2), ONE_SIDED, good_fraction=0.0
            )
