"""Unit tests for the lock-step engine and core protocol runtime."""

import pytest

from repro.channels import CorrelatedNoiseChannel, NoiselessChannel
from repro.core import (
    FunctionalProtocol,
    Party,
    Protocol,
    run_protocol,
)
from repro.errors import (
    ChannelError,
    ConfigurationError,
    ProtocolDesyncError,
    ProtocolError,
)


class _EchoParty(Party):
    """Beeps its input once and outputs what it heard."""

    def __init__(self, bit):
        self.bit = bit

    def run(self):
        heard = yield self.bit
        return heard


class _EchoProtocol(Protocol):
    def length(self):
        return 1

    def create_parties(self, inputs, shared_seed=None):
        self._check_inputs(inputs)
        return [_EchoParty(bit) for bit in inputs]


class _SilentParty(Party):
    """Zero communication; outputs a constant."""

    def run(self):
        return "done"
        yield  # pragma: no cover - makes this a generator


class _SilentProtocol(Protocol):
    def create_parties(self, inputs, shared_seed=None):
        return [_SilentParty() for _ in inputs]


class _VariableLengthProtocol(Protocol):
    """Party i talks for i+1 rounds — deliberately desynchronized."""

    class _P(Party):
        def __init__(self, rounds):
            self.rounds = rounds

        def run(self):
            for _ in range(self.rounds):
                yield 0
            return None

    def create_parties(self, inputs, shared_seed=None):
        return [self._P(i + 1) for i in range(len(inputs))]


class TestRunProtocolBasics:
    def test_or_is_broadcast(self):
        result = run_protocol(
            _EchoProtocol(3), [0, 1, 0], NoiselessChannel()
        )
        assert result.outputs == [1, 1, 1]

    def test_all_silent(self):
        result = run_protocol(
            _EchoProtocol(2), [0, 0], NoiselessChannel()
        )
        assert result.outputs == [0, 0]

    def test_round_count(self):
        result = run_protocol(
            _EchoProtocol(2), [1, 0], NoiselessChannel()
        )
        assert result.rounds == 1
        assert len(result.transcript) == 1

    def test_zero_round_protocol(self):
        result = run_protocol(
            _SilentProtocol(2), [None, None], NoiselessChannel()
        )
        assert result.outputs == ["done", "done"]
        assert result.rounds == 0

    def test_transcript_records_sent_bits(self):
        result = run_protocol(
            _EchoProtocol(3), [0, 1, 1], NoiselessChannel()
        )
        assert result.transcript[0].sent == (0, 1, 1)
        assert result.transcript[0].or_value == 1

    def test_record_sent_off(self):
        result = run_protocol(
            _EchoProtocol(2),
            [1, 0],
            NoiselessChannel(),
            record_sent=False,
        )
        assert result.transcript[0].sent is None

    def test_channel_stats_delta(self):
        channel = NoiselessChannel()
        channel.transmit((1,))  # pre-existing traffic
        result = run_protocol(_EchoProtocol(2), [1, 1], channel)
        assert result.channel_stats.rounds == 1
        assert result.channel_stats.beeps_sent == 2


class TestRunProtocolErrors:
    def test_desync_raises(self):
        with pytest.raises(ProtocolDesyncError):
            run_protocol(
                _VariableLengthProtocol(2), [None, None], NoiselessChannel()
            )

    def test_max_rounds_guard(self):
        class _Forever(Protocol):
            class _P(Party):
                def run(self):
                    while True:
                        yield 0

            def create_parties(self, inputs, shared_seed=None):
                return [self._P() for _ in inputs]

        with pytest.raises(ProtocolError):
            run_protocol(
                _Forever(1), [None], NoiselessChannel(), max_rounds=10
            )

    def test_invalid_beep_raises(self):
        class _Bad(Protocol):
            class _P(Party):
                def run(self):
                    yield 7
                    return None

            def create_parties(self, inputs, shared_seed=None):
                return [self._P() for _ in inputs]

        with pytest.raises(ChannelError):
            run_protocol(_Bad(1), [None], NoiselessChannel())

    def test_wrong_input_count(self):
        with pytest.raises(ProtocolError):
            run_protocol(_EchoProtocol(3), [0, 1], NoiselessChannel())


class TestFunctionalProtocol:
    def test_shared_broadcast_signature(self):
        protocol = FunctionalProtocol(
            n_parties=2,
            length=2,
            broadcast=lambda i, x, prefix: x[len(prefix)],
            output=lambda i, x, received: tuple(received),
        )
        result = run_protocol(
            protocol, [(1, 0), (0, 0)], NoiselessChannel()
        )
        assert result.outputs == [(1, 0), (1, 0)]

    def test_per_party_functions(self):
        protocol = FunctionalProtocol(
            n_parties=2,
            length=1,
            broadcast=[
                lambda x, prefix: 1,
                lambda x, prefix: 0,
            ],
            output=[
                lambda x, received: "a",
                lambda x, received: "b",
            ],
        )
        result = run_protocol(protocol, [None, None], NoiselessChannel())
        assert result.outputs == ["a", "b"]

    def test_prefix_grows_per_round(self):
        seen_lengths = []

        def broadcast(i, x, prefix):
            if i == 0:
                seen_lengths.append(len(prefix))
            return 0

        protocol = FunctionalProtocol(
            n_parties=1,
            length=3,
            broadcast=broadcast,
            output=lambda i, x, received: None,
        )
        run_protocol(protocol, [None], NoiselessChannel())
        assert seen_lengths == [0, 1, 2]

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            FunctionalProtocol(
                n_parties=1,
                length=-1,
                broadcast=lambda i, x, p: 0,
                output=lambda i, x, r: None,
            )

    def test_zero_parties_rejected(self):
        with pytest.raises(ConfigurationError):
            FunctionalProtocol(
                n_parties=0,
                length=1,
                broadcast=lambda i, x, p: 0,
                output=lambda i, x, r: None,
            )

    def test_length_metadata(self):
        protocol = FunctionalProtocol(
            n_parties=1,
            length=5,
            broadcast=lambda i, x, p: 0,
            output=lambda i, x, r: None,
        )
        assert protocol.length() == 5


class TestExecutionResult:
    def test_outputs_agree(self):
        result = run_protocol(_EchoProtocol(3), [1, 0, 0], NoiselessChannel())
        assert result.outputs_agree()
        assert result.common_output() == 1

    def test_disagreement_detected(self):
        class _IndexOutput(Protocol):
            class _P(Party):
                def __init__(self, index):
                    self.index = index

                def run(self):
                    yield 0
                    return self.index

            def create_parties(self, inputs, shared_seed=None):
                return [self._P(i) for i in range(len(inputs))]

        result = run_protocol(
            _IndexOutput(2), [None, None], NoiselessChannel()
        )
        assert not result.outputs_agree()
        with pytest.raises(ValueError):
            result.common_output()

    def test_noisy_channel_transcript_flags(self):
        channel = CorrelatedNoiseChannel(0.5 - 1e-9, rng=0)

        class _Long(Protocol):
            class _P(Party):
                def run(self):
                    for _ in range(200):
                        yield 0
                    return None

            def create_parties(self, inputs, shared_seed=None):
                return [self._P() for _ in inputs]

        result = run_protocol(_Long(1), [None], channel)
        assert len(result.transcript.noise_positions()) > 20
