"""Unit tests for the lock-step engine and core protocol runtime."""

import pytest

from repro.channels import (
    CorrelatedNoiseChannel,
    IndependentNoiseChannel,
    NoiselessChannel,
    ScriptedChannel,
)
from repro.core import (
    Burst,
    FunctionalProtocol,
    Party,
    Protocol,
    Silence,
    run_protocol,
)
from repro.errors import (
    ChannelError,
    ConfigurationError,
    ProtocolDesyncError,
    ProtocolError,
)


class _EchoParty(Party):
    """Beeps its input once and outputs what it heard."""

    def __init__(self, bit):
        self.bit = bit

    def run(self):
        heard = yield self.bit
        return heard


class _EchoProtocol(Protocol):
    def length(self):
        return 1

    def create_parties(self, inputs, shared_seed=None):
        self._check_inputs(inputs)
        return [_EchoParty(bit) for bit in inputs]


class _SilentParty(Party):
    """Zero communication; outputs a constant."""

    def run(self):
        return "done"
        yield  # pragma: no cover - makes this a generator


class _SilentProtocol(Protocol):
    def create_parties(self, inputs, shared_seed=None):
        return [_SilentParty() for _ in inputs]


class _VariableLengthProtocol(Protocol):
    """Party i talks for i+1 rounds — deliberately desynchronized."""

    class _P(Party):
        def __init__(self, rounds):
            self.rounds = rounds

        def run(self):
            for _ in range(self.rounds):
                yield 0
            return None

    def create_parties(self, inputs, shared_seed=None):
        return [self._P(i + 1) for i in range(len(inputs))]


class TestRunProtocolBasics:
    def test_or_is_broadcast(self):
        result = run_protocol(
            _EchoProtocol(3), [0, 1, 0], NoiselessChannel()
        )
        assert result.outputs == [1, 1, 1]

    def test_all_silent(self):
        result = run_protocol(
            _EchoProtocol(2), [0, 0], NoiselessChannel()
        )
        assert result.outputs == [0, 0]

    def test_round_count(self):
        result = run_protocol(
            _EchoProtocol(2), [1, 0], NoiselessChannel()
        )
        assert result.rounds == 1
        assert len(result.transcript) == 1

    def test_zero_round_protocol(self):
        result = run_protocol(
            _SilentProtocol(2), [None, None], NoiselessChannel()
        )
        assert result.outputs == ["done", "done"]
        assert result.rounds == 0

    def test_transcript_records_sent_bits(self):
        result = run_protocol(
            _EchoProtocol(3), [0, 1, 1], NoiselessChannel()
        )
        assert result.transcript[0].sent == (0, 1, 1)
        assert result.transcript[0].or_value == 1

    def test_record_sent_off(self):
        result = run_protocol(
            _EchoProtocol(2),
            [1, 0],
            NoiselessChannel(),
            record_sent=False,
        )
        assert result.transcript[0].sent is None

    def test_channel_stats_delta(self):
        channel = NoiselessChannel()
        channel.transmit((1,))  # pre-existing traffic
        result = run_protocol(_EchoProtocol(2), [1, 1], channel)
        assert result.channel_stats.rounds == 1
        assert result.channel_stats.beeps_sent == 2


class TestRunProtocolErrors:
    def test_desync_raises(self):
        with pytest.raises(ProtocolDesyncError):
            run_protocol(
                _VariableLengthProtocol(2), [None, None], NoiselessChannel()
            )

    def test_max_rounds_guard(self):
        class _Forever(Protocol):
            class _P(Party):
                def run(self):
                    while True:
                        yield 0

            def create_parties(self, inputs, shared_seed=None):
                return [self._P() for _ in inputs]

        with pytest.raises(ProtocolError):
            run_protocol(
                _Forever(1), [None], NoiselessChannel(), max_rounds=10
            )

    def test_invalid_beep_raises(self):
        class _Bad(Protocol):
            class _P(Party):
                def run(self):
                    yield 7
                    return None

            def create_parties(self, inputs, shared_seed=None):
                return [self._P() for _ in inputs]

        with pytest.raises(ChannelError):
            run_protocol(_Bad(1), [None], NoiselessChannel())

    def test_wrong_input_count(self):
        with pytest.raises(ProtocolError):
            run_protocol(_EchoProtocol(3), [0, 1], NoiselessChannel())


class _FixedPatternProtocol(Protocol):
    """Each party beeps a scripted bit pattern and returns its hearings."""

    class _P(Party):
        def __init__(self, pattern):
            self.pattern = pattern

        def run(self):
            heard = []
            for bit in self.pattern:
                heard.append((yield bit))
            return tuple(heard)

    def __init__(self, patterns):
        super().__init__(len(patterns))
        self.patterns = patterns

    def length(self):
        return len(self.patterns[0])

    def create_parties(self, inputs, shared_seed=None):
        return [self._P(pattern) for pattern in self.patterns]


class TestEngineEdgeCases:
    """Transcript shape, round-limit boundaries, and beep accounting."""

    def test_record_sent_off_keeps_or_values_and_length(self):
        patterns = [(1, 0, 1), (0, 0, 1)]
        result = run_protocol(
            _FixedPatternProtocol(patterns),
            [None, None],
            NoiselessChannel(),
            record_sent=False,
        )
        assert result.rounds == 3
        assert len(result.transcript) == 3
        assert all(record.sent is None for record in result.transcript)
        assert list(result.transcript.or_values()) == [1, 0, 1]
        assert [record.received for record in result.transcript] == [
            (1, 1),
            (0, 0),
            (1, 1),
        ]

    def test_record_sent_off_still_counts_beeps(self):
        patterns = [(1, 0, 1), (0, 0, 1)]
        result = run_protocol(
            _FixedPatternProtocol(patterns),
            [None, None],
            NoiselessChannel(),
            record_sent=False,
        )
        assert result.beeps_per_party == (2, 1)
        assert result.total_energy == 3
        assert result.channel_stats.beeps_sent == 3

    def test_zero_round_parties_leave_channel_untouched(self):
        channel = NoiselessChannel()
        result = run_protocol(_SilentProtocol(3), [0, 0, 0], channel)
        assert result.rounds == 0
        assert len(result.transcript) == 0
        assert result.outputs == ["done"] * 3
        assert result.beeps_per_party == (0, 0, 0)
        assert channel.stats.rounds == 0
        assert result.channel_stats.rounds == 0

    def test_max_rounds_exact_boundary(self):
        patterns = [(0, 1, 0)]
        # A 3-round protocol completes with max_rounds=3 ...
        result = run_protocol(
            _FixedPatternProtocol(patterns),
            [None],
            NoiselessChannel(),
            max_rounds=3,
        )
        assert result.rounds == 3
        # ... and trips the guard with max_rounds=2.
        with pytest.raises(ProtocolError):
            run_protocol(
                _FixedPatternProtocol(patterns),
                [None],
                NoiselessChannel(),
                max_rounds=2,
            )

    def test_desync_error_names_laggards(self):
        with pytest.raises(ProtocolDesyncError) as excinfo:
            run_protocol(
                _VariableLengthProtocol(3),
                [None, None, None],
                NoiselessChannel(),
            )
        # Party 0 stops after round 1; parties 1 and 2 are the laggards.
        assert "[1, 2]" in str(excinfo.value)

    def test_desync_wins_over_max_rounds(self):
        # The desync is detected at the round it happens even when the
        # round budget would have expired at the same point.
        with pytest.raises(ProtocolDesyncError):
            run_protocol(
                _VariableLengthProtocol(2),
                [None, None],
                NoiselessChannel(),
                max_rounds=1,
            )

    def test_beeps_per_party_against_scripted_channel(self):
        # Flips at rounds 0 and 2 alter receptions, never beep counts.
        patterns = [(1, 0, 0, 1), (0, 0, 1, 1), (0, 0, 0, 0)]
        channel = ScriptedChannel(flip_rounds={0, 2})
        result = run_protocol(
            _FixedPatternProtocol(patterns), [None] * 3, channel
        )
        assert result.beeps_per_party == (2, 2, 0)
        assert result.channel_stats.beeps_sent == 4
        assert result.channel_stats.or_ones == 3
        # Round 0: OR=1 flipped down; round 2: OR=1 flipped down too.
        assert result.channel_stats.flips_down == 2
        assert result.channel_stats.flips_up == 0
        assert list(result.transcript.or_values()) == [1, 0, 1, 1]
        assert result.outputs[0] == (0, 0, 0, 1)

    def test_scripted_up_flip_received_by_all(self):
        patterns = [(0, 0), (0, 0)]
        channel = ScriptedChannel(flip_rounds={1})
        result = run_protocol(
            _FixedPatternProtocol(patterns), [None, None], channel
        )
        assert result.channel_stats.flips_up == 1
        assert result.outputs == [(0, 1), (0, 1)]
        assert result.total_energy == 0


class _TokenScriptProtocol(Protocol):
    """Each party runs a script of ``('bit', b)`` / ``('burst', b, k)`` /
    ``('silence', k)`` steps, collecting everything it heard."""

    class _P(Party):
        def __init__(self, script):
            self.script = script

        def run(self):
            heard = []
            for step in self.script:
                kind = step[0]
                if kind == "bit":
                    heard.append((yield step[1]))
                elif kind == "burst":
                    heard.extend((yield Burst(step[1], step[2])))
                else:
                    heard.extend((yield Silence(step[1])))
            return tuple(heard)

    def __init__(self, scripts):
        super().__init__(len(scripts))
        self.scripts = scripts

    def create_parties(self, inputs, shared_seed=None):
        return [self._P(script) for script in self.scripts]


def _desugar(scripts):
    """The per-round twin of a token script set."""
    patterns = []
    for script in scripts:
        bits = []
        for step in script:
            if step[0] == "bit":
                bits.append(step[1])
            elif step[0] == "burst":
                bits.extend([step[1]] * step[2])
            else:
                bits.extend([0] * step[1])
        patterns.append(tuple(bits))
    return _FixedPatternProtocol(patterns)


def _assert_same_execution(tokened, desugared):
    assert tokened.outputs == desugared.outputs
    assert tokened.rounds == desugared.rounds
    assert tokened.beeps_per_party == desugared.beeps_per_party
    assert tokened.channel_stats == desugared.channel_stats
    token_t, plain_t = tokened.transcript, desugared.transcript
    assert len(token_t) == len(plain_t)
    assert list(token_t) == list(plain_t)
    assert token_t.or_values() == plain_t.or_values()
    assert token_t.noisy_count == plain_t.noisy_count
    assert token_t.noise_positions() == plain_t.noise_positions()
    for party in range(token_t.n_parties):
        assert token_t.view(party) == plain_t.view(party)


class TestBatchTokens:
    """Engine-level semantics of Burst/Silence yield tokens."""

    STAGGERED = [
        [("burst", 1, 3), ("bit", 0), ("silence", 2)],
        [("silence", 4), ("bit", 1), ("bit", 0)],
        [("bit", 0), ("burst", 0, 2), ("bit", 1), ("burst", 1, 2)],
    ]

    @pytest.mark.parametrize("record_sent", [True, False])
    def test_matches_desugared_on_noisy_channel(self, record_sent):
        scripts = self.STAGGERED
        tokened = run_protocol(
            _TokenScriptProtocol(scripts),
            [None] * 3,
            CorrelatedNoiseChannel(0.3, rng=11),
            record_sent=record_sent,
        )
        desugared = run_protocol(
            _desugar(scripts),
            [None] * 3,
            CorrelatedNoiseChannel(0.3, rng=11),
            record_sent=record_sent,
        )
        _assert_same_execution(tokened, desugared)
        if record_sent:
            for party in range(3):
                assert tokened.transcript.sent_bits(
                    party
                ) == desugared.transcript.sent_bits(party)

    def test_matches_desugared_on_word_path(self):
        # Independent noise exercises the sparse word loop and per-party
        # received slices.
        scripts = self.STAGGERED
        tokened = run_protocol(
            _TokenScriptProtocol(scripts),
            [None] * 3,
            IndependentNoiseChannel(0.3, rng=23),
        )
        desugared = run_protocol(
            _desugar(scripts),
            [None] * 3,
            IndependentNoiseChannel(0.3, rng=23),
        )
        _assert_same_execution(tokened, desugared)

    def test_all_asleep_run_batching(self):
        # Every party sleeps from round 0: the engine transmits the whole
        # stretch in blocks; transcript and stats must be exact.
        scripts = [
            [("burst", 1, 5), ("silence", 3)],
            [("silence", 8)],
        ]
        result = run_protocol(
            _TokenScriptProtocol(scripts), [None] * 2, NoiselessChannel()
        )
        assert result.rounds == 8
        assert result.outputs[1] == (1,) * 5 + (0,) * 3
        assert result.beeps_per_party == (5, 0)
        assert result.channel_stats.beeps_sent == 5
        assert result.channel_stats.or_ones == 5
        assert result.transcript.sent_bits(0) == (1,) * 5 + (0,) * 3
        assert result.transcript.sent_bits(1) == (0,) * 8

    def test_wake_payload_is_one_bytes_slice(self):
        payloads = []

        class _Probe(Party):
            def run(self):
                payloads.append((yield Silence(4)))
                return None

        class _ProbeProtocol(Protocol):
            def create_parties(self, inputs, shared_seed=None):
                return [_Probe()]

        run_protocol(_ProbeProtocol(1), [None], NoiselessChannel())
        assert payloads == [b"\x00\x00\x00\x00"]

    def test_sleeping_burst_feeds_the_or(self):
        # Party 0 sleeps while beeping; awake party 1 must hear the OR.
        scripts = [
            [("burst", 1, 3)],
            [("bit", 0), ("bit", 0), ("bit", 0)],
        ]
        result = run_protocol(
            _TokenScriptProtocol(scripts), [None] * 2, NoiselessChannel()
        )
        assert result.outputs[1] == (1, 1, 1)

    def test_tokens_at_priming(self):
        # The very first yield of every party is a token (no dense rounds).
        result = run_protocol(
            _TokenScriptProtocol([[("burst", 1, 2)], [("silence", 2)]]),
            [None] * 2,
            NoiselessChannel(),
        )
        assert result.rounds == 2
        assert result.outputs == [(1, 1), (1, 1)]

    def test_max_rounds_inside_a_batch(self):
        with pytest.raises(ProtocolError):
            run_protocol(
                _TokenScriptProtocol([[("silence", 10)]]),
                [None],
                NoiselessChannel(),
                max_rounds=4,
            )
        # Exactly at the cap is fine.
        result = run_protocol(
            _TokenScriptProtocol([[("silence", 10)]]),
            [None],
            NoiselessChannel(),
            max_rounds=10,
        )
        assert result.rounds == 10

    def test_max_rounds_inside_a_batch_charges_the_channel(self):
        # The clipped run still transmits max_rounds rounds, like the
        # dense loop does before its guard fires.
        channel = NoiselessChannel()
        with pytest.raises(ProtocolError):
            run_protocol(
                _TokenScriptProtocol([[("silence", 10)]]),
                [None],
                channel,
                max_rounds=4,
            )
        assert channel.stats.rounds == 4

    def test_desync_against_token_party(self):
        scripts = [
            [("bit", 0)],
            [("silence", 5)],
        ]
        with pytest.raises(ProtocolDesyncError) as excinfo:
            run_protocol(
                _TokenScriptProtocol(scripts), [None] * 2, NoiselessChannel()
            )
        assert "[1]" in str(excinfo.value)

    def test_bad_token_count_raises(self):
        for count in (0, -3, 1.5, "2"):
            with pytest.raises(ProtocolError):
                run_protocol(
                    _TokenScriptProtocol([[("burst", 1, count)]]),
                    [None],
                    NoiselessChannel(),
                )

    def test_bad_token_bit_raises(self):
        with pytest.raises(ChannelError):
            run_protocol(
                _TokenScriptProtocol([[("burst", 7, 3)]]),
                [None],
                NoiselessChannel(),
            )

    def test_scripted_flips_reach_sleeping_listener(self):
        channel = ScriptedChannel(flip_rounds={1, 3})
        result = run_protocol(
            _TokenScriptProtocol([[("silence", 5)]]), [None], channel
        )
        assert result.outputs[0] == (0, 1, 0, 1, 0)
        assert result.channel_stats.flips_up == 2


class TestFunctionalProtocol:
    def test_shared_broadcast_signature(self):
        protocol = FunctionalProtocol(
            n_parties=2,
            length=2,
            broadcast=lambda i, x, prefix: x[len(prefix)],
            output=lambda i, x, received: tuple(received),
        )
        result = run_protocol(
            protocol, [(1, 0), (0, 0)], NoiselessChannel()
        )
        assert result.outputs == [(1, 0), (1, 0)]

    def test_per_party_functions(self):
        protocol = FunctionalProtocol(
            n_parties=2,
            length=1,
            broadcast=[
                lambda x, prefix: 1,
                lambda x, prefix: 0,
            ],
            output=[
                lambda x, received: "a",
                lambda x, received: "b",
            ],
        )
        result = run_protocol(protocol, [None, None], NoiselessChannel())
        assert result.outputs == ["a", "b"]

    def test_prefix_grows_per_round(self):
        seen_lengths = []

        def broadcast(i, x, prefix):
            if i == 0:
                seen_lengths.append(len(prefix))
            return 0

        protocol = FunctionalProtocol(
            n_parties=1,
            length=3,
            broadcast=broadcast,
            output=lambda i, x, received: None,
        )
        run_protocol(protocol, [None], NoiselessChannel())
        assert seen_lengths == [0, 1, 2]

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigurationError):
            FunctionalProtocol(
                n_parties=1,
                length=-1,
                broadcast=lambda i, x, p: 0,
                output=lambda i, x, r: None,
            )

    def test_zero_parties_rejected(self):
        with pytest.raises(ConfigurationError):
            FunctionalProtocol(
                n_parties=0,
                length=1,
                broadcast=lambda i, x, p: 0,
                output=lambda i, x, r: None,
            )

    def test_length_metadata(self):
        protocol = FunctionalProtocol(
            n_parties=1,
            length=5,
            broadcast=lambda i, x, p: 0,
            output=lambda i, x, r: None,
        )
        assert protocol.length() == 5


class TestExecutionResult:
    def test_outputs_agree(self):
        result = run_protocol(_EchoProtocol(3), [1, 0, 0], NoiselessChannel())
        assert result.outputs_agree()
        assert result.common_output() == 1

    def test_disagreement_detected(self):
        class _IndexOutput(Protocol):
            class _P(Party):
                def __init__(self, index):
                    self.index = index

                def run(self):
                    yield 0
                    return self.index

            def create_parties(self, inputs, shared_seed=None):
                return [self._P(i) for i in range(len(inputs))]

        result = run_protocol(
            _IndexOutput(2), [None, None], NoiselessChannel()
        )
        assert not result.outputs_agree()
        with pytest.raises(ValueError):
            result.common_output()

    def test_noisy_channel_transcript_flags(self):
        channel = CorrelatedNoiseChannel(0.5 - 1e-9, rng=0)

        class _Long(Protocol):
            class _P(Party):
                def run(self):
                    for _ in range(200):
                        yield 0
                    return None

            def create_parties(self, inputs, shared_seed=None):
                return [self._P() for _ in inputs]

        result = run_protocol(_Long(1), [None], channel)
        assert len(result.transcript.noise_positions()) > 20
