"""Unit tests for the multi-hop beeping network substrate."""

import random

import pytest

from repro.channels import IndependentNoiseChannel, NoiselessChannel
from repro.channels.stats import ChannelStats
from repro.core import run_protocol
from repro.errors import ChannelError, ConfigurationError, TaskError
from repro.network import (
    BroadcastTask,
    MISTask,
    NeighborORTask,
    NetworkBeepingChannel,
    NetworkSizeEstimateTask,
    complete,
    grid,
    mis_protocol,
    parse_topology,
    ring,
)

_STAT_FIELDS = ("rounds", "beeps_sent", "or_ones", "flips_up", "flips_down")


def _stats_tuple(stats):
    return tuple(getattr(stats, name) for name in _STAT_FIELDS)


class TestTopologies:
    def test_ring_degrees(self):
        adjacency = ring(5)
        assert all(len(neighbors) == 2 for neighbors in adjacency)
        assert adjacency[0] == (1, 4)

    def test_ring_validation(self):
        with pytest.raises(ConfigurationError):
            ring(2)

    def test_grid_corner_and_center(self):
        adjacency = grid(3, 3)
        assert set(adjacency[0]) == {1, 3}  # corner
        assert set(adjacency[4]) == {1, 3, 5, 7}  # center

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            grid(0, 3)

    def test_complete(self):
        adjacency = complete(4)
        assert all(len(neighbors) == 3 for neighbors in adjacency)
        assert 0 not in adjacency[0]


class TestNetworkChannel:
    def test_neighborhood_or(self):
        channel = NetworkBeepingChannel(ring(4))
        # Node 0 beeps: only its neighbors 1 and 3 hear it.
        outcome = channel.transmit((1, 0, 0, 0))
        assert outcome.received == (0, 1, 0, 1)

    def test_hear_self(self):
        channel = NetworkBeepingChannel(ring(4), hear_self=True)
        outcome = channel.transmit((1, 0, 0, 0))
        assert outcome.received == (1, 1, 0, 1)

    def test_complete_graph_equals_single_hop(self):
        """Complete graph + hear_self reproduces the noiseless single-hop
        channel on arbitrary beep patterns."""
        rng = random.Random(0)
        network = NetworkBeepingChannel(complete(5), hear_self=True)
        single = NoiselessChannel()
        for _ in range(50):
            bits = tuple(rng.getrandbits(1) for _ in range(5))
            assert (
                network.transmit(bits).received
                == single.transmit(bits).received
            )

    def test_complete_graph_with_noise_matches_independent_model(self):
        """Statistically: complete graph + hear_self + epsilon behaves
        like IndependentNoiseChannel."""
        network = NetworkBeepingChannel(
            complete(3), epsilon=0.2, hear_self=True, rng=1
        )
        independent = IndependentNoiseChannel(0.2, rng=2)
        trials = 4000
        network_flips = sum(
            sum(network.transmit((0, 0, 0)).received)
            for _ in range(trials)
        )
        independent_flips = sum(
            sum(independent.transmit((0, 0, 0)).received)
            for _ in range(trials)
        )
        assert network_flips == pytest.approx(
            independent_flips, rel=0.15
        )

    def test_arity_enforced(self):
        channel = NetworkBeepingChannel(ring(4))
        with pytest.raises(ChannelError):
            channel.transmit((1, 0))

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkBeepingChannel([(0,), ()])

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkBeepingChannel([(5,), (0,)])

    def test_noise_stats_counted_against_neighborhood(self):
        channel = NetworkBeepingChannel(ring(4), epsilon=0.3, rng=3)
        for _ in range(500):
            channel.transmit((0, 0, 0, 0))
        # All silent: every received 1 is an up-flip.
        assert channel.stats.flips_up > 0
        assert channel.stats.flips_down == 0

    def test_directed_interference_allowed(self):
        # Node 0 hears node 1 but not vice versa.
        channel = NetworkBeepingChannel([(1,), ()])
        outcome = channel.transmit((0, 1))
        assert outcome.received == (1, 0)


class TestSingleHopPin:
    """Complete graph + hear_self IS the single-hop independent channel.

    Not statistically — bitwise: same seed, same draws, same received
    words, same stats counters.  This is the equivalence that anchors
    the network substrate to the paper's channel.
    """

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    @pytest.mark.parametrize("epsilon", [0.0, 0.1, 0.3])
    def test_bitwise_identical_to_independent(self, n, epsilon):
        network = NetworkBeepingChannel(
            complete(n), epsilon=epsilon, hear_self=True, rng=42
        )
        single = IndependentNoiseChannel(epsilon, rng=42)
        rng = random.Random(n)
        for _ in range(200):
            bits = tuple(rng.getrandbits(1) for _ in range(n))
            ours, theirs = network.transmit(bits), single.transmit(bits)
            assert ours.received == theirs.received
            assert ours.or_value == theirs.or_value
        assert _stats_tuple(network.stats) == _stats_tuple(single.stats)

    def test_step_matches_transmit_draws(self):
        """The sparse API consumes the same randomness as the dense one."""
        topology = parse_topology("geometric:n=60,r=0.2,seed=1").build()
        dense = NetworkBeepingChannel(topology, epsilon=0.05, rng=9)
        sparse = NetworkBeepingChannel(topology, epsilon=0.05, rng=9)
        rng = random.Random(0)
        for _ in range(100):
            bits = tuple(
                rng.getrandbits(1) for _ in range(topology.n)
            )
            outcome = dense.transmit(bits)
            or_value, ones = sparse.step(
                [i for i, bit in enumerate(bits) if bit]
            )
            assert or_value == outcome.or_value
            assert sorted(ones) == [
                i for i, bit in enumerate(outcome.received) if bit
            ]
        assert _stats_tuple(dense.stats) == _stats_tuple(sparse.stats)


class TestEdgeAndNodeNoise:
    def test_edge_erasure_only_suppresses(self):
        channel = NetworkBeepingChannel(ring(6), edge_epsilon=0.5, rng=7)
        for _ in range(300):
            outcome = channel.transmit((1, 0, 0, 0, 0, 0))
            # Erasures can only silence edges: nobody outside the clean
            # neighborhood {1, 5} ever hears anything.
            assert all(
                outcome.received[i] == 0 for i in (0, 2, 3, 4)
            )
        assert channel.stats.flips_up == 0
        assert channel.stats.flips_down > 0

    def test_hear_self_immune_to_edge_erasure(self):
        channel = NetworkBeepingChannel(
            ring(4), edge_epsilon=0.99, hear_self=True, rng=0
        )
        for _ in range(50):
            assert channel.transmit((1, 0, 0, 0)).received[0] == 1

    def test_per_node_epsilons(self):
        channel = NetworkBeepingChannel(
            ring(4), node_epsilons=[0.5, 0.0, 0.0, 0.0], rng=3
        )
        for _ in range(200):
            outcome = channel.transmit((0, 0, 0, 0))
            assert outcome.received[1:] == (0, 0, 0)
        assert channel.stats.flips_up > 0

    def test_node_epsilons_arity_checked(self):
        with pytest.raises(ConfigurationError):
            NetworkBeepingChannel(ring(4), node_epsilons=[0.1, 0.1])


class TestNoiseAccounting:
    def test_topology_shadow_is_not_noise(self):
        """The documented conflation fix: on a non-complete graph, a node
        not hearing a far-away beep is topology, not noise."""
        channel = NetworkBeepingChannel(ring(6))
        outcome = channel.transmit((1, 0, 0, 0, 0, 0))
        # Global OR is 1 but nodes 2..4 hear 0 — and that is NOT noisy.
        assert outcome.or_value == 1
        assert outcome.flips == (0, 0)
        assert not outcome.noisy
        assert channel.stats.flips == 0

    def test_flips_field_sums_to_stats(self):
        channel = NetworkBeepingChannel(ring(8), epsilon=0.3, rng=11)
        up = down = 0
        rng = random.Random(1)
        for _ in range(200):
            bits = tuple(rng.getrandbits(1) for _ in range(8))
            outcome = channel.transmit(bits)
            up += outcome.flips[0]
            down += outcome.flips[1]
        assert (up, down) == (
            channel.stats.flips_up,
            channel.stats.flips_down,
        )

    def test_observed_from_transcript_reconstructs_network_stats(self):
        """The drift tripwire works with divergent per-node views because
        the channel routes its accounting through append_raw's flips."""
        task = MISTask(ring(6))
        channel = task.channel(epsilon=0.1, rng=2)
        inputs = task.sample_inputs(random.Random(0))
        result = run_protocol(
            task.noiseless_protocol(), inputs, channel
        )
        observed = ChannelStats.observed_from_transcript(result.transcript)
        assert observed.rounds == result.rounds
        assert observed.flips_up == result.channel_stats.flips_up
        assert observed.flips_down == result.channel_stats.flips_down
        assert observed.or_ones == result.channel_stats.or_ones


class TestNetworkTasks:
    @pytest.mark.parametrize(
        "spec",
        ["grid:4x5", "geometric:n=30,r=0.3,seed=2", "scale-free:n=25,m=2,seed=4"],
    )
    def test_broadcast_floods_noiselessly(self, spec):
        task = BroadcastTask(parse_topology(spec).build())
        for trial in range(10):
            inputs = task.sample_inputs(random.Random(trial))
            result = run_protocol(
                task.noiseless_protocol(), inputs, task.channel()
            )
            assert task.is_correct(inputs, result.outputs), spec

    def test_neighbor_or_is_one_round(self):
        task = NeighborORTask(parse_topology("grid:3x3").build())
        inputs = task.sample_inputs(random.Random(0))
        result = run_protocol(
            task.noiseless_protocol(), inputs, task.channel()
        )
        assert result.rounds == 1
        assert task.is_correct(inputs, result.outputs)

    def test_neighbor_or_reference_output_unavailable(self):
        task = NeighborORTask(parse_topology("grid:3x3").build())
        with pytest.raises(TaskError):
            task.reference_output([0] * 9)

    def test_net_size_estimate_noiseless(self):
        task = NetworkSizeEstimateTask(parse_topology("grid:6x6").build())
        wins = 0
        for trial in range(10):
            inputs = task.sample_inputs(random.Random(trial))
            result = run_protocol(
                task.noiseless_protocol(), inputs, task.channel()
            )
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 9

    def test_broadcast_requires_connected_for_full_delivery(self):
        # Unreachable nodes must end with 0 and the checker knows it.
        task = BroadcastTask(
            [(1,), (0,), (3,), (2,)]  # two disconnected edges
        )
        inputs = [1, 0, 0, 0]
        result = run_protocol(
            task.noiseless_protocol(), inputs, task.channel()
        )
        assert task.is_correct(inputs, result.outputs)
        assert result.outputs[2:] == [0, 0]


class TestMISTask:
    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(ConfigurationError):
            MISTask([(1,), ()])

    def test_reference_output_unavailable(self):
        with pytest.raises(TaskError):
            MISTask(ring(4)).reference_output([])

    def test_probability_schedule_cycles(self):
        task = MISTask(ring(8))
        assert task.candidate_probability(0) == 0.5
        assert task.candidate_probability(1) == 0.25
        assert task.candidate_probability(task.levels) == 0.5

    def test_checker_accepts_valid_mis(self):
        task = MISTask(ring(4))
        assert task.is_correct([], [True, False, True, False])

    def test_checker_rejects_dependent_set(self):
        task = MISTask(ring(4))
        assert not task.is_correct([], [True, True, False, False])

    def test_checker_rejects_non_maximal_set(self):
        task = MISTask(ring(6))
        # Nodes 3,4,5 all out with no in-neighbor.
        assert not task.is_correct(
            [], [True, False, False, False, False, False]
        )

    def test_checker_rejects_undecided(self):
        task = MISTask(ring(4))
        assert not task.is_correct([], [True, False, True, None])

    def test_phase_validation(self):
        with pytest.raises(ConfigurationError):
            mis_protocol(4, 0)
        with pytest.raises(ConfigurationError):
            MISTask(ring(4), cycles=0)


class TestMISExecution:
    @pytest.mark.parametrize(
        "name,adjacency",
        [
            ("ring", ring(10)),
            ("grid", grid(3, 4)),
            ("complete", complete(8)),
        ],
    )
    def test_high_success_noiseless(self, name, adjacency):
        task = MISTask(adjacency)
        wins = 0
        for trial in range(20):
            inputs = task.sample_inputs(random.Random(trial))
            result = run_protocol(
                task.noiseless_protocol(), inputs, task.channel()
            )
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 19, name

    def test_round_count(self):
        task = MISTask(ring(6), cycles=3)
        inputs = task.sample_inputs(random.Random(0))
        result = run_protocol(
            task.noiseless_protocol(), inputs, task.channel()
        )
        assert result.rounds == 2 * task.phases

    def test_noise_degrades_mis(self):
        """Per-node noise breaks the election — phantom candidate beeps
        suppress legitimate winners and phantom victory beeps dominate
        nodes with no winning neighbor."""
        task = MISTask(ring(10))
        wins = 0
        trials = 20
        for trial in range(trials):
            inputs = task.sample_inputs(random.Random(trial))
            result = run_protocol(
                task.noiseless_protocol(),
                inputs,
                task.channel(epsilon=0.1, rng=trial),
            )
            wins += task.is_correct(inputs, result.outputs)
        assert wins <= trials * 0.7

    def test_deterministic_given_seeds(self):
        task = MISTask(grid(2, 3))
        inputs = task.sample_inputs(random.Random(5))
        a = run_protocol(
            task.noiseless_protocol(), inputs, task.channel()
        )
        b = run_protocol(
            task.noiseless_protocol(), inputs, task.channel()
        )
        assert a.outputs == b.outputs
