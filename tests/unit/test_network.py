"""Unit tests for the multi-hop beeping network substrate."""

import random

import pytest

from repro.channels import IndependentNoiseChannel, NoiselessChannel
from repro.core import run_protocol
from repro.errors import ChannelError, ConfigurationError, TaskError
from repro.network import (
    MISTask,
    NetworkBeepingChannel,
    complete,
    grid,
    mis_protocol,
    ring,
)


class TestTopologies:
    def test_ring_degrees(self):
        adjacency = ring(5)
        assert all(len(neighbors) == 2 for neighbors in adjacency)
        assert adjacency[0] == (1, 4)

    def test_ring_validation(self):
        with pytest.raises(ConfigurationError):
            ring(2)

    def test_grid_corner_and_center(self):
        adjacency = grid(3, 3)
        assert set(adjacency[0]) == {1, 3}  # corner
        assert set(adjacency[4]) == {1, 3, 5, 7}  # center

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            grid(0, 3)

    def test_complete(self):
        adjacency = complete(4)
        assert all(len(neighbors) == 3 for neighbors in adjacency)
        assert 0 not in adjacency[0]


class TestNetworkChannel:
    def test_neighborhood_or(self):
        channel = NetworkBeepingChannel(ring(4))
        # Node 0 beeps: only its neighbors 1 and 3 hear it.
        outcome = channel.transmit((1, 0, 0, 0))
        assert outcome.received == (0, 1, 0, 1)

    def test_hear_self(self):
        channel = NetworkBeepingChannel(ring(4), hear_self=True)
        outcome = channel.transmit((1, 0, 0, 0))
        assert outcome.received == (1, 1, 0, 1)

    def test_complete_graph_equals_single_hop(self):
        """Complete graph + hear_self reproduces the noiseless single-hop
        channel on arbitrary beep patterns."""
        rng = random.Random(0)
        network = NetworkBeepingChannel(complete(5), hear_self=True)
        single = NoiselessChannel()
        for _ in range(50):
            bits = tuple(rng.getrandbits(1) for _ in range(5))
            assert (
                network.transmit(bits).received
                == single.transmit(bits).received
            )

    def test_complete_graph_with_noise_matches_independent_model(self):
        """Statistically: complete graph + hear_self + epsilon behaves
        like IndependentNoiseChannel."""
        network = NetworkBeepingChannel(
            complete(3), epsilon=0.2, hear_self=True, rng=1
        )
        independent = IndependentNoiseChannel(0.2, rng=2)
        trials = 4000
        network_flips = sum(
            sum(network.transmit((0, 0, 0)).received)
            for _ in range(trials)
        )
        independent_flips = sum(
            sum(independent.transmit((0, 0, 0)).received)
            for _ in range(trials)
        )
        assert network_flips == pytest.approx(
            independent_flips, rel=0.15
        )

    def test_arity_enforced(self):
        channel = NetworkBeepingChannel(ring(4))
        with pytest.raises(ChannelError):
            channel.transmit((1, 0))

    def test_self_loop_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkBeepingChannel([(0,), ()])

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkBeepingChannel([(5,), (0,)])

    def test_noise_stats_counted_against_neighborhood(self):
        channel = NetworkBeepingChannel(ring(4), epsilon=0.3, rng=3)
        for _ in range(500):
            channel.transmit((0, 0, 0, 0))
        # All silent: every received 1 is an up-flip.
        assert channel.stats.flips_up > 0
        assert channel.stats.flips_down == 0

    def test_directed_interference_allowed(self):
        # Node 0 hears node 1 but not vice versa.
        channel = NetworkBeepingChannel([(1,), ()])
        outcome = channel.transmit((0, 1))
        assert outcome.received == (1, 0)


class TestMISTask:
    def test_asymmetric_adjacency_rejected(self):
        with pytest.raises(ConfigurationError):
            MISTask([(1,), ()])

    def test_reference_output_unavailable(self):
        with pytest.raises(TaskError):
            MISTask(ring(4)).reference_output([])

    def test_probability_schedule_cycles(self):
        task = MISTask(ring(8))
        assert task.candidate_probability(0) == 0.5
        assert task.candidate_probability(1) == 0.25
        assert task.candidate_probability(task.levels) == 0.5

    def test_checker_accepts_valid_mis(self):
        task = MISTask(ring(4))
        assert task.is_correct([], [True, False, True, False])

    def test_checker_rejects_dependent_set(self):
        task = MISTask(ring(4))
        assert not task.is_correct([], [True, True, False, False])

    def test_checker_rejects_non_maximal_set(self):
        task = MISTask(ring(6))
        # Nodes 3,4,5 all out with no in-neighbor.
        assert not task.is_correct(
            [], [True, False, False, False, False, False]
        )

    def test_checker_rejects_undecided(self):
        task = MISTask(ring(4))
        assert not task.is_correct([], [True, False, True, None])

    def test_phase_validation(self):
        with pytest.raises(ConfigurationError):
            mis_protocol(4, 0)
        with pytest.raises(ConfigurationError):
            MISTask(ring(4), cycles=0)


class TestMISExecution:
    @pytest.mark.parametrize(
        "name,adjacency",
        [
            ("ring", ring(10)),
            ("grid", grid(3, 4)),
            ("complete", complete(8)),
        ],
    )
    def test_high_success_noiseless(self, name, adjacency):
        task = MISTask(adjacency)
        wins = 0
        for trial in range(20):
            inputs = task.sample_inputs(random.Random(trial))
            result = run_protocol(
                task.noiseless_protocol(), inputs, task.channel()
            )
            wins += task.is_correct(inputs, result.outputs)
        assert wins >= 19, name

    def test_round_count(self):
        task = MISTask(ring(6), cycles=3)
        inputs = task.sample_inputs(random.Random(0))
        result = run_protocol(
            task.noiseless_protocol(), inputs, task.channel()
        )
        assert result.rounds == 2 * task.phases

    def test_noise_degrades_mis(self):
        """Per-node noise breaks the election — phantom candidate beeps
        suppress legitimate winners and phantom victory beeps dominate
        nodes with no winning neighbor."""
        task = MISTask(ring(10))
        wins = 0
        trials = 20
        for trial in range(trials):
            inputs = task.sample_inputs(random.Random(trial))
            result = run_protocol(
                task.noiseless_protocol(),
                inputs,
                task.channel(epsilon=0.1, rng=trial),
            )
            wins += task.is_correct(inputs, result.outputs)
        assert wins <= trials * 0.7

    def test_deterministic_given_seeds(self):
        task = MISTask(grid(2, 3))
        inputs = task.sample_inputs(random.Random(5))
        a = run_protocol(
            task.noiseless_protocol(), inputs, task.channel()
        )
        b = run_protocol(
            task.noiseless_protocol(), inputs, task.channel()
        )
        assert a.outputs == b.outputs
