"""Unit tests for entropy accounting and the closed-form theory bounds."""

import math

import pytest

from repro.core.formal import NoiseModel
from repro.errors import ConfigurationError
from repro.lowerbound import theory
from repro.lowerbound.entropy import (
    c4_feasible_entropy_bound,
    entropy,
    mutual_information,
    posterior_input_distribution,
    posterior_input_entropy,
    transcript_distribution,
)
from repro.tasks.input_set import input_set_formal_protocol

ONE_SIDED = NoiseModel.one_sided(1.0 / 3.0)


class TestEntropyHelper:
    def test_uniform_distribution(self):
        assert entropy({"a": 0.5, "b": 0.5}) == pytest.approx(1.0)

    def test_deterministic_distribution(self):
        assert entropy({"a": 1.0}) == 0.0

    def test_zero_entries_ignored(self):
        assert entropy({"a": 1.0, "b": 0.0}) == 0.0

    def test_four_way_uniform(self):
        dist = {i: 0.25 for i in range(4)}
        assert entropy(dist) == pytest.approx(2.0)


class TestTranscriptDistribution:
    def test_normalised(self):
        protocol = input_set_formal_protocol(2)
        distribution = transcript_distribution(protocol, ONE_SIDED)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_noiseless_support(self):
        protocol = input_set_formal_protocol(2)
        distribution = transcript_distribution(
            protocol, NoiseModel(up=0.0, down=0.0)
        )
        # Noiseless transcripts are exactly the indicator vectors of L(x):
        # between 1 and 2 ones in 4 rounds.
        for pi in distribution:
            assert 1 <= sum(pi) <= 2


class TestPosterior:
    def test_posterior_normalised(self):
        protocol = input_set_formal_protocol(2)
        posterior = posterior_input_distribution(
            protocol, ONE_SIDED, (1, 1, 0, 0)
        )
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_zero_rounds_exclude_inputs(self):
        protocol = input_set_formal_protocol(2)
        posterior = posterior_input_distribution(
            protocol, ONE_SIDED, (0, 1, 1, 1)
        )
        # pi_1 = 0 under one-sided noise: nobody holds value 1.
        for inputs in posterior:
            assert 1 not in inputs

    def test_impossible_transcript_raises(self):
        protocol = input_set_formal_protocol(2)
        with pytest.raises(ConfigurationError):
            # All-zero transcript is impossible: every party beeps once.
            posterior_input_distribution(
                protocol, ONE_SIDED, (0, 0, 0, 0)
            )

    def test_observation_c4_pointwise(self):
        """H(X | π) ≤ Σ_i log |S^i(π)| for every reachable transcript."""
        protocol = input_set_formal_protocol(2)
        distribution = transcript_distribution(protocol, ONE_SIDED)
        for pi in distribution:
            posterior_entropy = posterior_input_entropy(
                protocol, ONE_SIDED, pi
            )
            bound = c4_feasible_entropy_bound(protocol, pi)
            assert posterior_entropy <= bound + 1e-9


class TestMutualInformation:
    def test_bounded_by_rounds(self):
        """Fact B.4/B.5 chain: I(X ; Π) ≤ H(Π) ≤ T."""
        protocol = input_set_formal_protocol(2)
        information = mutual_information(protocol, ONE_SIDED)
        assert 0.0 - 1e-9 <= information <= protocol.length() + 1e-9

    def test_noiseless_reveals_more(self):
        protocol = input_set_formal_protocol(2)
        noisy = mutual_information(protocol, ONE_SIDED)
        clean = mutual_information(protocol, NoiseModel(up=0.0, down=0.0))
        assert clean >= noisy - 1e-9


class TestTheoryBounds:
    def test_c2_bound_shape(self):
        # Grows with T, shrinks with n at fixed T/n ratio... check both.
        assert theory.c2_zeta_bound(8, 16) < theory.c2_zeta_bound(8, 32)
        assert theory.c2_zeta_bound(16, 0) == pytest.approx(0.25)

    def test_c3_requirement(self):
        assert theory.c3_zeta_requirement(16) == pytest.approx(16**-0.75)

    def test_c1_threshold(self):
        assert theory.c1_round_threshold(1024) == pytest.approx(
            1024 * 10 / 1000
        )

    def test_crossover_consistency(self):
        """At T = crossover, the C.2 cap equals the C.3 floor."""
        for n in (10**4, 10**6):
            rounds = theory.zeta_crossover_rounds(n)
            assert rounds > 0
            cap = theory.c2_zeta_bound(n, rounds)
            floor = theory.c3_zeta_requirement(n)
            assert cap == pytest.approx(floor, rel=1e-6)

    def test_crossover_is_n_log_n_shaped(self):
        """crossover(n) / n grows like log n."""
        ratios = [
            theory.zeta_crossover_rounds(n) / n
            for n in (10**4, 10**6, 10**8)
        ]
        assert ratios[0] < ratios[1] < ratios[2]
        increments = [ratios[1] - ratios[0], ratios[2] - ratios[1]]
        # log-shaped: equal increments per multiplicative step.
        assert increments[0] == pytest.approx(increments[1], rel=0.01)

    def test_tiny_n_crossover_clamps_to_zero(self):
        assert theory.zeta_crossover_rounds(2) == 0.0

    def test_upper_bound_rounds(self):
        assert theory.upper_bound_rounds(16, 10, constant=2.0) == pytest.approx(
            2.0 * 10 * 4
        )

    def test_cauchy_schwarz_gap_nonnegative(self):
        gap = theory.cauchy_schwarz_ratio_gap([1, 2, 3], [2, 1, 4])
        assert gap >= 0

    def test_cauchy_schwarz_equality_case(self):
        """Equality when a_i proportional to b_i."""
        gap = theory.cauchy_schwarz_ratio_gap([1, 2, 3], [2, 4, 6])
        assert gap == pytest.approx(0.0, abs=1e-12)

    def test_cauchy_schwarz_validation(self):
        with pytest.raises(ConfigurationError):
            theory.cauchy_schwarz_ratio_gap([1], [1, 2])
        with pytest.raises(ConfigurationError):
            theory.cauchy_schwarz_ratio_gap([], [])
        with pytest.raises(ConfigurationError):
            theory.cauchy_schwarz_ratio_gap([1, -1], [1, 1])

    def test_lemma_b8_bound_monotone_in_k(self):
        assert theory.lemma_b8_probability_bound(
            2, 100
        ) < theory.lemma_b8_probability_bound(50, 100)

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            theory.c2_zeta_bound(0, 1)
        with pytest.raises(ConfigurationError):
            theory.c2_zeta_bound(4, -1)
        with pytest.raises(ConfigurationError):
            theory.c3_zeta_requirement(0)
        with pytest.raises(ConfigurationError):
            theory.c1_round_threshold(-1)
        with pytest.raises(ConfigurationError):
            theory.lemma_b8_probability_bound(0, 5)
