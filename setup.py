"""Legacy setup shim.

The environment's setuptools predates full PEP 660 editable-install support,
so ``pip install -e .`` falls back to this shim (``--no-use-pep517``).  All
metadata lives in ``pyproject.toml``; the explicit arguments below mirror it
for setuptools versions whose pyproject support is incomplete.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Noisy Beeps' (Efremenko, Kol, Saxena; PODC 2020)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
)
